//! Graph mutations streamed into the running engine (paper §3: "vertices/
//! edges can be injected/removed from the graph during the computation from
//! a stream").
//!
//! [`MutationBatch`] is a thin wrapper over the workspace-wide
//! [`UpdateBatch`] event model from `apg-graph`: the engine's superstep
//! mutations and the logical-level path speak the same [`GraphDelta`]
//! vocabulary, so the two realisations cannot drift. Anything that produces
//! an `UpdateBatch` — a stream source, a recorded delta log — converts into
//! a `MutationBatch` for free via `From`.

use apg_graph::{GraphDelta, UpdateBatch, VertexId};

/// A batch of graph changes applied atomically at a superstep boundary.
///
/// Deltas apply **in the order they were scheduled** (the shared
/// [`UpdateBatch`] contract). Vertex additions receive their ids from the
/// engine when the batch is applied; [`MutationBatch::add_vertex`] returns
/// a *placeholder index* that can be used to wire batch-internal edges
/// before ids exist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    batch: UpdateBatch,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Schedules a new vertex attached to `neighbors` (existing ids).
    /// Returns its placeholder index within this batch.
    pub fn add_vertex(&mut self, neighbors: Vec<VertexId>) -> usize {
        self.batch.add_vertex(neighbors)
    }

    /// Connects two vertices added in *this* batch, by placeholder index.
    ///
    /// # Panics
    ///
    /// Panics if either placeholder is out of range.
    pub fn connect_new(&mut self, a: usize, b: usize) {
        self.batch.connect_new(a, b);
    }

    /// Schedules an edge between existing vertices.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.batch.add_edge(u, v);
    }

    /// Schedules an edge removal.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.batch.remove_edge(u, v);
    }

    /// Schedules a vertex removal.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.batch.remove_vertex(v);
    }

    /// Number of scheduled vertex additions.
    pub fn num_new_vertices(&self) -> usize {
        self.batch.num_new_vertices()
    }

    /// Merges another batch after this one, **in place**: the receiver's
    /// delta buffer is extended (never cloned or rebuilt) and the appended
    /// batch's placeholders are offset so its internal edges keep naming
    /// the vertices they named before.
    pub fn extend(&mut self, other: MutationBatch) {
        self.batch.extend(other.batch);
    }

    /// The shared delta representation this batch wraps.
    pub fn as_update_batch(&self) -> &UpdateBatch {
        &self.batch
    }

    /// Unwraps into the shared delta representation.
    pub fn into_update_batch(self) -> UpdateBatch {
        self.batch
    }
}

impl From<UpdateBatch> for MutationBatch {
    fn from(batch: UpdateBatch) -> Self {
        MutationBatch { batch }
    }
}

impl From<MutationBatch> for UpdateBatch {
    fn from(batch: MutationBatch) -> Self {
        batch.batch
    }
}

impl From<GraphDelta> for MutationBatch {
    /// A single-delta batch (`ConnectNew` is batch-scoped and panics, as in
    /// [`UpdateBatch::push`]).
    fn from(delta: GraphDelta) -> Self {
        MutationBatch {
            batch: UpdateBatch::from(delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_batch() {
        let mut b = MutationBatch::new();
        assert!(b.is_empty());
        let a = b.add_vertex(vec![1, 2]);
        let c = b.add_vertex(vec![]);
        b.connect_new(a, c);
        b.add_edge(1, 3);
        b.remove_edge(2, 3);
        b.remove_vertex(9);
        assert!(!b.is_empty());
        assert_eq!(b.num_new_vertices(), 2);
        assert_eq!(b.as_update_batch().len(), 6);
    }

    #[test]
    fn extend_offsets_placeholders() {
        let mut first = MutationBatch::new();
        first.add_vertex(vec![]);
        let mut second = MutationBatch::new();
        let x = second.add_vertex(vec![]);
        let y = second.add_vertex(vec![]);
        second.connect_new(x, y);
        first.extend(second);
        assert_eq!(first.num_new_vertices(), 3);
        assert_eq!(
            first.as_update_batch().deltas().last(),
            Some(&GraphDelta::ConnectNew { a: 1, b: 2 })
        );
    }

    #[test]
    #[should_panic]
    fn connect_new_validates() {
        let mut b = MutationBatch::new();
        b.connect_new(0, 1);
    }

    #[test]
    fn round_trips_through_update_batch() {
        let mut b = MutationBatch::new();
        b.add_vertex(vec![0]);
        b.remove_vertex(3);
        let shared: UpdateBatch = b.clone().into_update_batch();
        assert_eq!(MutationBatch::from(shared), b);
    }
}
