//! Graph mutations streamed into the running engine (paper §3: "vertices/
//! edges can be injected/removed from the graph during the computation from
//! a stream").

use apg_graph::VertexId;

/// A batch of graph changes applied atomically at a superstep boundary.
///
/// Vertex additions receive their ids from the engine when the batch is
/// applied; [`MutationBatch::add_vertex`] returns a *placeholder index* that
/// can be used to wire batch-internal edges before ids exist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    /// Adjacency (to existing vertices) of each new vertex.
    pub(crate) new_vertices: Vec<Vec<VertexId>>,
    /// Edges between new vertices, as (placeholder, placeholder).
    pub(crate) new_internal_edges: Vec<(usize, usize)>,
    /// Edges between existing vertices.
    pub(crate) add_edges: Vec<(VertexId, VertexId)>,
    /// Edge removals.
    pub(crate) remove_edges: Vec<(VertexId, VertexId)>,
    /// Vertex removals (incident edges go too).
    pub(crate) remove_vertices: Vec<VertexId>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }

    /// Schedules a new vertex attached to `neighbors` (existing ids).
    /// Returns its placeholder index within this batch.
    pub fn add_vertex(&mut self, neighbors: Vec<VertexId>) -> usize {
        self.new_vertices.push(neighbors);
        self.new_vertices.len() - 1
    }

    /// Connects two vertices added in *this* batch, by placeholder index.
    ///
    /// # Panics
    ///
    /// Panics if either placeholder is out of range.
    pub fn connect_new(&mut self, a: usize, b: usize) {
        assert!(a < self.new_vertices.len() && b < self.new_vertices.len());
        self.new_internal_edges.push((a, b));
    }

    /// Schedules an edge between existing vertices.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_edges.push((u, v));
    }

    /// Schedules an edge removal.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.remove_edges.push((u, v));
    }

    /// Schedules a vertex removal.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.remove_vertices.push(v);
    }

    /// Number of scheduled vertex additions.
    pub fn num_new_vertices(&self) -> usize {
        self.new_vertices.len()
    }

    /// Merges another batch after this one.
    pub fn extend(&mut self, mut other: MutationBatch) {
        let offset = self.new_vertices.len();
        self.new_vertices.append(&mut other.new_vertices);
        self.new_internal_edges.extend(
            other
                .new_internal_edges
                .iter()
                .map(|&(a, b)| (a + offset, b + offset)),
        );
        self.add_edges.append(&mut other.add_edges);
        self.remove_edges.append(&mut other.remove_edges);
        self.remove_vertices.append(&mut other.remove_vertices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_batch() {
        let mut b = MutationBatch::new();
        assert!(b.is_empty());
        let a = b.add_vertex(vec![1, 2]);
        let c = b.add_vertex(vec![]);
        b.connect_new(a, c);
        b.add_edge(1, 3);
        b.remove_edge(2, 3);
        b.remove_vertex(9);
        assert!(!b.is_empty());
        assert_eq!(b.num_new_vertices(), 2);
    }

    #[test]
    fn extend_offsets_placeholders() {
        let mut first = MutationBatch::new();
        first.add_vertex(vec![]);
        let mut second = MutationBatch::new();
        let x = second.add_vertex(vec![]);
        let y = second.add_vertex(vec![]);
        second.connect_new(x, y);
        first.extend(second);
        assert_eq!(first.new_internal_edges, vec![(1, 2)]);
    }

    #[test]
    #[should_panic]
    fn connect_new_validates() {
        let mut b = MutationBatch::new();
        b.connect_new(0, 1);
    }
}
