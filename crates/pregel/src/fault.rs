//! Fault injection: simulated worker crashes with checkpoint recovery.
//!
//! Figure 8's caption notes "the sudden drop in throughput and superstep
//! time is due to a failure in one of the workers that led to the triggering
//! of recovery mechanism". This module reproduces that artefact: a scheduled
//! crash wipes the victim worker's in-memory vertex values and in-transit
//! messages (they are restored from the last checkpoint, i.e. reset to
//! `Default`), and charges a recovery penalty to simulated time for a few
//! supersteps.

use crate::worker::WorkerId;

/// One scheduled worker failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Superstep at whose *start* the worker fails.
    pub superstep: usize,
    /// The victim worker.
    pub worker: WorkerId,
    /// Supersteps the recovery penalty lasts.
    pub recovery_supersteps: usize,
    /// Extra simulated time added to each affected superstep.
    pub recovery_penalty: f64,
}

/// A schedule of failures for a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a failure event.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Crash that begins exactly at `superstep` (convenience).
    pub fn crash(superstep: usize, worker: WorkerId) -> Self {
        Self::none().with_event(FaultEvent {
            superstep,
            worker,
            recovery_supersteps: 5,
            recovery_penalty: 2000.0,
        })
    }

    /// Events whose crash fires at this superstep.
    pub fn crashes_at(&self, superstep: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.superstep == superstep)
    }

    /// Total recovery penalty applying to this superstep.
    pub fn penalty_at(&self, superstep: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| superstep >= e.superstep && superstep < e.superstep + e.recovery_supersteps)
            .map(|e| e.recovery_penalty)
            .sum()
    }

    /// Whether any event exists.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_window() {
        let plan = FaultPlan::none().with_event(FaultEvent {
            superstep: 10,
            worker: 2,
            recovery_supersteps: 3,
            recovery_penalty: 100.0,
        });
        assert_eq!(plan.penalty_at(9), 0.0);
        assert_eq!(plan.penalty_at(10), 100.0);
        assert_eq!(plan.penalty_at(12), 100.0);
        assert_eq!(plan.penalty_at(13), 0.0);
    }

    #[test]
    fn crashes_fire_once() {
        let plan = FaultPlan::crash(5, 1);
        assert_eq!(plan.crashes_at(5).count(), 1);
        assert_eq!(plan.crashes_at(6).count(), 0);
    }

    #[test]
    fn overlapping_penalties_sum() {
        let plan = FaultPlan::none()
            .with_event(FaultEvent {
                superstep: 0,
                worker: 0,
                recovery_supersteps: 4,
                recovery_penalty: 10.0,
            })
            .with_event(FaultEvent {
                superstep: 2,
                worker: 1,
                recovery_supersteps: 4,
                recovery_penalty: 5.0,
            });
        assert_eq!(plan.penalty_at(2), 15.0);
    }
}
