//! Synthetic call-detail-record (CDR) stream with weekly churn.
//!
//! The paper's final use case processes one month of anonymised calls from
//! a European operator: 21 M subscribers, 132 M reciprocated ties, mean
//! degree ~10, giant component 99.1%, and a measured turnover of **8%
//! weekly additions and 4% weekly deletions**, with entities removed after
//! a week of inactivity. This generator reproduces those structural
//! properties at a configurable scale: subscribers belong to communities
//! (calls are mostly intra-community, giving high clustering and a heavy
//! but not power-law degree profile), and each week new subscribers join
//! while stale ones leave.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use apg_graph::{UpdateBatch, VertexId};

use crate::source::{RestartableSource, SourceCursor, StreamSource};

/// Identifier of a subscriber within the generator (dense, never reused).
///
/// Subscriber ids are allocated densely from 0 and never reused — the same
/// discipline [`apg_graph::DynGraph`] uses for vertex slots — so a
/// subscriber's id *is* its vertex id in a graph that starts as
/// `DynGraph::with_vertices(config.initial_subscribers)` and applies every
/// emitted batch.
pub type SubscriberId = usize;

/// Configuration of the CDR stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdrConfig {
    /// Subscribers at stream start.
    pub initial_subscribers: usize,
    /// Mean community size.
    pub mean_community: usize,
    /// Calls placed per subscriber per week (drives mean degree ~10).
    pub calls_per_subscriber_week: f64,
    /// Probability a call stays within the caller's community.
    pub intra_community_prob: f64,
    /// Weekly subscriber additions as a fraction of the population.
    pub weekly_addition_rate: f64,
    /// Weekly subscriber removals as a fraction of the population.
    pub weekly_removal_rate: f64,
    /// Weekly probability that a subscriber goes dormant (stops calling);
    /// dormant subscribers age out after a week of inactivity, which is
    /// what produces the removal stream.
    pub dormancy_rate: f64,
    /// Call batches per week (the paper streams at a 15x speed-up and
    /// buffers changes per computation round; one batch = one buffered set).
    pub batches_per_week: usize,
}

impl Default for CdrConfig {
    fn default() -> Self {
        CdrConfig {
            initial_subscribers: 20_000,
            mean_community: 40,
            calls_per_subscriber_week: 12.0,
            intra_community_prob: 0.85,
            weekly_addition_rate: 0.08,
            weekly_removal_rate: 0.04,
            dormancy_rate: 0.06,
            batches_per_week: 14,
        }
    }
}

/// One week of stream output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeekEvents {
    /// Call batches, in order; each entry is a set of call edges.
    pub batches: Vec<Vec<(SubscriberId, SubscriberId)>>,
    /// Subscribers that joined this week (already usable in batches).
    pub joined: Vec<SubscriberId>,
    /// Subscribers removed at the end of the week (inactive > 1 week).
    pub departed: Vec<SubscriberId>,
}

impl WeekEvents {
    /// Total calls in the week.
    pub fn total_calls(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Re-expresses the week as [`UpdateBatch`]es, one per call batch:
    /// subscribers who joined enter at the head of the first batch (they
    /// can call immediately), call edges follow in batch order, and
    /// week-end departures close the last batch. Duplicate calls become
    /// rejected deltas at apply time — the graph keeps unique ties.
    pub fn to_update_batches(&self) -> Vec<UpdateBatch> {
        let mut out: Vec<UpdateBatch> = Vec::with_capacity(self.batches.len().max(1));
        let mut first = UpdateBatch::new();
        for _ in &self.joined {
            first.add_vertex(Vec::new());
        }
        let mut calls = self.batches.iter();
        if let Some(head) = calls.next() {
            for &(a, b) in head {
                first.add_edge(a as VertexId, b as VertexId);
            }
        }
        out.push(first);
        for batch in calls {
            let mut ub = UpdateBatch::new();
            for &(a, b) in batch {
                ub.add_edge(a as VertexId, b as VertexId);
            }
            out.push(ub);
        }
        let last = out.last_mut().expect("at least one batch");
        for &s in &self.departed {
            last.remove_vertex(s as VertexId);
        }
        out
    }
}

/// The stream generator. Call [`CdrStream::week`] once per simulated week.
///
/// # Example
///
/// ```
/// use apg_streams::{CdrConfig, CdrStream};
///
/// let mut stream = CdrStream::new(CdrConfig { initial_subscribers: 1000, ..Default::default() }, 3);
/// let week = stream.week();
/// assert!(week.total_calls() > 3000);
/// assert!(week.joined.len() >= 60 && week.joined.len() <= 100); // ~8%
/// ```
#[derive(Debug, Clone)]
pub struct CdrStream {
    config: CdrConfig,
    rng: StdRng,
    /// Community of each subscriber ever created.
    community: Vec<u32>,
    /// Members of each community (live only).
    members: Vec<Vec<SubscriberId>>,
    /// Live flag per subscriber.
    alive: Vec<bool>,
    /// Still placing calls (live but dormant subscribers are waiting to
    /// age out).
    active: Vec<bool>,
    /// Week the subscriber last placed/received a call.
    last_active: Vec<u32>,
    num_live: usize,
    week: u32,
    /// Update batches generated but not yet pulled via [`StreamSource`].
    pending: VecDeque<UpdateBatch>,
    /// Batches emitted through [`StreamSource::next_batch`] (the resume
    /// cursor).
    emitted_batches: u64,
}

impl CdrStream {
    /// Creates a stream with the initial population settled into
    /// communities.
    ///
    /// # Panics
    ///
    /// Panics if `initial_subscribers == 0`, `mean_community == 0`, or
    /// rates are not in `[0, 1]`.
    pub fn new(config: CdrConfig, seed: u64) -> Self {
        assert!(config.initial_subscribers > 0, "need subscribers");
        assert!(config.mean_community > 0, "need a community size");
        assert!(
            (0.0..=1.0).contains(&config.intra_community_prob),
            "bad intra prob"
        );
        assert!(
            (0.0..=1.0).contains(&config.weekly_addition_rate),
            "bad addition rate"
        );
        assert!(
            (0.0..=1.0).contains(&config.weekly_removal_rate),
            "bad removal rate"
        );
        let mut stream = CdrStream {
            config,
            rng: StdRng::seed_from_u64(seed),
            community: Vec::new(),
            members: Vec::new(),
            alive: Vec::new(),
            active: Vec::new(),
            last_active: Vec::new(),
            num_live: 0,
            week: 0,
            pending: VecDeque::new(),
            emitted_batches: 0,
        };
        for _ in 0..config.initial_subscribers {
            stream.spawn_subscriber();
        }
        stream
    }

    /// Live subscriber count.
    pub fn num_live(&self) -> usize {
        self.num_live
    }

    /// Whether a subscriber is currently live.
    pub fn is_live(&self, s: SubscriberId) -> bool {
        self.alive.get(s).copied().unwrap_or(false)
    }

    /// Generates one week of calls and churn.
    pub fn week(&mut self) -> WeekEvents {
        let mut events = WeekEvents::default();

        // Some subscribers go quiet this week; after a further week of
        // silence they will be removed (the paper's inactivity rule).
        for s in 0..self.alive.len() {
            if self.alive[s] && self.active[s] && self.rng.gen_bool(self.config.dormancy_rate) {
                self.active[s] = false;
            }
        }

        // Weekly additions arrive spread through the week; for simplicity
        // they join at the start (they can call immediately).
        let additions =
            ((self.num_live as f64) * self.config.weekly_addition_rate).round() as usize;
        for _ in 0..additions {
            events.joined.push(self.spawn_subscriber());
        }

        // Call traffic.
        let total_calls =
            (self.num_live as f64 * self.config.calls_per_subscriber_week).round() as usize;
        let per_batch = total_calls / self.config.batches_per_week.max(1);
        for _ in 0..self.config.batches_per_week {
            let mut batch = Vec::with_capacity(per_batch);
            for _ in 0..per_batch {
                if let Some(call) = self.place_call() {
                    batch.push(call);
                }
            }
            events.batches.push(batch);
        }

        // Weekly removals: subscribers inactive for more than one week, up
        // to the configured rate, preferring the longest-inactive.
        let target = ((self.num_live as f64) * self.config.weekly_removal_rate).round() as usize;
        let mut stale: Vec<SubscriberId> = (0..self.alive.len())
            .filter(|&s| self.alive[s] && !self.active[s] && self.last_active[s] < self.week)
            .collect();
        stale.sort_by_key(|&s| self.last_active[s]);
        for s in stale.into_iter().take(target) {
            self.retire_subscriber(s);
            events.departed.push(s);
        }

        self.week += 1;
        events
    }

    fn spawn_subscriber(&mut self) -> SubscriberId {
        let id = self.community.len();
        // Join an under-sized community or found a new one.
        let c = if !self.members.is_empty() && self.rng.gen_bool(0.9) {
            let c = self.rng.gen_range(0..self.members.len());
            if self.members[c].len() < 2 * self.config.mean_community {
                c
            } else {
                self.new_community()
            }
        } else {
            self.new_community()
        };
        self.community.push(c as u32);
        self.members[c].push(id);
        self.alive.push(true);
        self.active.push(true);
        self.last_active.push(self.week);
        self.num_live += 1;
        id
    }

    fn new_community(&mut self) -> usize {
        self.members.push(Vec::new());
        self.members.len() - 1
    }

    fn retire_subscriber(&mut self, s: SubscriberId) {
        debug_assert!(self.alive[s]);
        self.alive[s] = false;
        self.num_live -= 1;
        let c = self.community[s] as usize;
        self.members[c].retain(|&m| m != s);
    }

    fn place_call(&mut self) -> Option<(SubscriberId, SubscriberId)> {
        let caller = self.pick_active()?;
        let callee = if self.rng.gen_bool(self.config.intra_community_prob) {
            let c = self.community[caller] as usize;
            // Bounded retries over community peers (some may be dormant);
            // fall back to a random active subscriber.
            let mut found = None;
            for _ in 0..8 {
                let peers = &self.members[c];
                if peers.len() < 2 {
                    break;
                }
                let pick = peers[self.rng.gen_range(0..peers.len())];
                if pick != caller && self.active[pick] {
                    found = Some(pick);
                    break;
                }
            }
            match found {
                Some(p) => p,
                None => self.pick_active()?,
            }
        } else {
            self.pick_active()?
        };
        if caller == callee {
            return None;
        }
        self.last_active[caller] = self.week;
        self.last_active[callee] = self.week;
        Some((caller, callee))
    }

    fn pick_active(&mut self) -> Option<SubscriberId> {
        if self.num_live == 0 {
            return None;
        }
        for _ in 0..10_000 {
            let s = self.rng.gen_range(0..self.alive.len());
            if self.alive[s] && self.active[s] {
                return Some(s);
            }
        }
        None
    }
}

/// The canonical ingestion view: one [`UpdateBatch`] per call batch
/// ([`CdrConfig::batches_per_week`] of them per simulated week), with joins
/// opening each week and departures closing it — see
/// [`WeekEvents::to_update_batches`]. The stream is open-ended.
///
/// Don't interleave [`CdrStream::week`] with this: a directly pulled week
/// never enters the batch queue.
impl StreamSource for CdrStream {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        if self.pending.is_empty() {
            let week = self.week();
            self.pending.extend(week.to_update_batches());
        }
        let batch = self.pending.pop_front();
        if batch.is_some() {
            self.emitted_batches += 1;
        }
        batch
    }
}

impl RestartableSource for CdrStream {
    fn cursor(&self) -> SourceCursor {
        SourceCursor::at(self.emitted_batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CdrConfig {
        CdrConfig {
            initial_subscribers: 2000,
            ..Default::default()
        }
    }

    #[test]
    fn weekly_churn_matches_paper_rates() {
        let mut s = CdrStream::new(small(), 1);
        let w0 = s.week();
        let added = w0.joined.len() as f64 / 2000.0;
        assert!((0.06..=0.10).contains(&added), "addition rate {added}");
        // Removals only begin once someone has been inactive > 1 week.
        let w1 = s.week();
        let base = s.num_live() as f64;
        let removed = w1.departed.len() as f64 / base;
        assert!(removed <= 0.05, "removal rate {removed}");
    }

    #[test]
    fn calls_mostly_intra_community() {
        let mut s = CdrStream::new(small(), 2);
        let week = s.week();
        let mut intra = 0usize;
        let mut total = 0usize;
        for batch in &week.batches {
            for &(a, b) in batch {
                total += 1;
                if s.community[a] == s.community[b] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.75, "intra fraction {frac}");
    }

    #[test]
    fn mean_degree_near_ten() {
        // Accumulate one week of calls into a graph and check mean degree.
        let mut s = CdrStream::new(small(), 3);
        let week = s.week();
        let mut edges = std::collections::HashSet::new();
        for batch in &week.batches {
            for &(a, b) in batch {
                edges.insert((a.min(b), a.max(b)));
            }
        }
        let mean_degree = 2.0 * edges.len() as f64 / s.num_live() as f64;
        assert!(
            (6.0..=14.0).contains(&mean_degree),
            "mean degree {mean_degree} outside the paper's ~10"
        );
    }

    #[test]
    fn departed_subscribers_stay_dead() {
        let mut s = CdrStream::new(small(), 4);
        let mut dead = Vec::new();
        for _ in 0..4 {
            let w = s.week();
            for &d in &w.departed {
                assert!(!s.is_live(d));
                dead.push(d);
            }
            // A week's calls never involve the already-departed.
            for batch in &w.batches {
                for &(a, b) in batch {
                    assert!(!dead.contains(&a), "call from departed {a}");
                    assert!(!dead.contains(&b), "call to departed {b}");
                }
            }
        }
        assert!(!dead.is_empty(), "nobody ever departed");
    }

    #[test]
    fn population_grows_net_four_percent() {
        let mut s = CdrStream::new(small(), 5);
        for _ in 0..4 {
            s.week();
        }
        let growth = s.num_live() as f64 / 2000.0;
        // +8% / -4% per week for 4 weeks ~ (1.04)^4 ~ 1.17.
        assert!((1.08..=1.30).contains(&growth), "growth {growth}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CdrStream::new(small(), 7);
        let mut b = CdrStream::new(small(), 7);
        assert_eq!(a.week(), b.week());
    }

    #[test]
    fn stream_source_matches_week_conversion() {
        use apg_graph::{DynGraph, Graph};
        let cfg = small();
        let mut pulled = CdrStream::new(cfg, 9);
        let mut weekly = CdrStream::new(cfg, 9);
        let mut g_pulled = DynGraph::with_vertices(cfg.initial_subscribers);
        let mut g_weekly = g_pulled.clone();
        // Two weeks through the StreamSource interface...
        for _ in 0..2 * cfg.batches_per_week {
            pulled
                .next_batch()
                .expect("stream is open-ended")
                .apply(&mut g_pulled);
        }
        // ...must build the same graph as two explicit week conversions.
        for _ in 0..2 {
            for batch in weekly.week().to_update_batches() {
                batch.apply(&mut g_weekly);
            }
        }
        assert_eq!(g_pulled, g_weekly);
        assert_eq!(pulled.num_live(), weekly.num_live());
        // Churn actually reached the graph: population grew net ~+4%/week.
        assert!(g_pulled.num_live_vertices() > cfg.initial_subscribers);
    }

    #[test]
    fn update_batches_order_joins_first_departures_last() {
        let mut s = CdrStream::new(small(), 12);
        s.week(); // prime inactivity so week 2 has departures
        let week = s.week();
        assert!(!week.departed.is_empty(), "need departures for this test");
        let batches = week.to_update_batches();
        assert_eq!(batches.len(), week.batches.len());
        assert_eq!(batches[0].num_new_vertices(), week.joined.len());
        assert_eq!(
            batches.last().unwrap().num_vertex_removals(),
            week.departed.len()
        );
        // No removals anywhere but the tail batch.
        for b in &batches[..batches.len() - 1] {
            assert_eq!(b.num_vertex_removals(), 0);
        }
    }
}
