//! Dynamic graph workload generators for the paper's three real-world use
//! cases (§4.3), unified behind the [`StreamSource`] abstraction.
//!
//! The paper feeds its system from live sources we cannot reach — the
//! Twitter Streaming API and a European mobile operator's call-detail
//! records. Each generator here synthesises a stream with the properties
//! the paper reports about its source, and every one of them emits the
//! canonical [`UpdateBatch`](apg_graph::UpdateBatch) event model from
//! `apg-graph`:
//!
//! * [`TwitterStream`] — a diurnal tweet-rate profile (the London-day curve
//!   of Figure 8, double peak, overnight trough), mention edges following
//!   preferential attachment over a growing user population.
//! * [`CdrStream`] — community-structured call graph with the paper's
//!   measured churn: ~8% weekly additions, ~4% weekly deletions, entities
//!   removed after a week of inactivity.
//! * [`ForestFireSource`] / [`forest_fire_delta`] — the instantaneous +10%
//!   forest-fire expansion of the biomedical experiment (Figure 7b),
//!   expressed as update batches.
//! * [`PowerLawGrowth`] — open-ended preferential-attachment growth.
//!
//! Consumers pull batches with [`StreamSource::next_batch`] and apply them
//! to a [`DynGraph`] (or hand them to `apg_core`'s `StreamingRunner` /
//! `apg_pregel`'s engine), so every workload reaches the graph through one
//! ingestion path.

pub mod cdr;
pub mod source;
pub mod twitter;

pub use apg_graph::gen::{forest_fire, ForestFireConfig};
pub use cdr::{CdrConfig, CdrStream, WeekEvents};
pub use source::{
    forest_fire_delta, ForestFireSource, PowerLawGrowth, RestartableSource, SourceCursor,
    StreamSource,
};
pub use twitter::{MentionBatch, TwitterConfig, TwitterStream};

use apg_graph::DynGraph;
use apg_graph::VertexId;

/// Injects the paper's Figure 7b burst into `graph`: 10% new vertices with
/// ~3 edges each (the paper's 10 M vertices / 30 M edges at 100 M scale).
///
/// The burst is computed as an [`apg_graph::UpdateBatch`] (see
/// [`forest_fire_delta`]) and applied through the shared delta model; use
/// `forest_fire_delta` directly to route the same expansion into an engine
/// or a recorded log instead of mutating in place.
///
/// Returns the new vertex ids.
pub fn forest_fire_burst(graph: &mut DynGraph, seed: u64) -> Vec<VertexId> {
    use apg_graph::Graph;
    let burst = graph.num_live_vertices() / 10;
    let batch = forest_fire_delta(graph, &ForestFireConfig::burst(burst, seed));
    batch.apply(graph).new_vertices
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{gen, Graph};

    #[test]
    fn burst_adds_ten_percent_vertices() {
        let mut g = DynGraph::from(&gen::mesh3d(10, 10, 10));
        let new = forest_fire_burst(&mut g, 5);
        assert_eq!(new.len(), 100);
        assert_eq!(g.num_live_vertices(), 1100);
    }
}
