//! Dynamic graph workload generators for the paper's three real-world use
//! cases (§4.3).
//!
//! The paper feeds its system from live sources we cannot reach — the
//! Twitter Streaming API and a European mobile operator's call-detail
//! records. Each generator here synthesises a stream with the properties
//! the paper reports about its source:
//!
//! * [`TwitterStream`] — a diurnal tweet-rate profile (the London-day curve
//!   of Figure 8, double peak, overnight trough), mention edges following
//!   preferential attachment over a growing user population.
//! * [`CdrStream`] — community-structured call graph with the paper's
//!   measured churn: ~8% weekly additions, ~4% weekly deletions, entities
//!   removed after a week of inactivity.
//! * [`forest_fire_burst`] — the instantaneous +10% forest-fire expansion
//!   of the biomedical experiment (Figure 7b), re-exported from
//!   `apg-graph` with the Figure-7 defaults.

pub mod cdr;
pub mod twitter;

pub use apg_graph::gen::{forest_fire, ForestFireConfig};
pub use cdr::{CdrConfig, CdrStream, WeekEvents};
pub use twitter::{MentionBatch, TwitterConfig, TwitterStream};

use apg_graph::DynGraph;
use apg_graph::VertexId;

/// Injects the paper's Figure 7b burst into `graph`: 10% new vertices with
/// ~3 edges each (the paper's 10 M vertices / 30 M edges at 100 M scale).
///
/// Returns the new vertex ids.
pub fn forest_fire_burst(graph: &mut DynGraph, seed: u64) -> Vec<VertexId> {
    use apg_graph::Graph;
    let burst = graph.num_live_vertices() / 10;
    forest_fire(graph, &ForestFireConfig::burst(burst, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{gen, Graph};

    #[test]
    fn burst_adds_ten_percent_vertices() {
        let mut g = DynGraph::from(&gen::mesh3d(10, 10, 10));
        let new = forest_fire_burst(&mut g, 5);
        assert_eq!(new.len(), 100);
        assert_eq!(g.num_live_vertices(), 1100);
    }
}
