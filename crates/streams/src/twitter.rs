//! Synthetic Twitter mention stream with a diurnal rate profile.
//!
//! Figure 8 plots tweets/second collected in London over a full day
//! (Friday 5 Oct 2012): an overnight trough around 4–5 am, a climb through
//! the morning, and a sustained evening peak — with momentary rates up to
//! ~50 tweets/s. The generator reproduces that shape with a double-Gaussian
//! day curve and draws mention endpoints by preferential attachment
//! (activity and attention on Twitter are both heavy-tailed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use apg_graph::{UpdateBatch, VertexId};

use crate::source::{RestartableSource, SourceCursor, StreamSource};

/// Configuration of the synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwitterConfig {
    /// Peak tweet rate, tweets per second (Figure 8 shows ~40–50).
    pub peak_rate: f64,
    /// Probability a tweet contains a mention (creates/refreshes an edge).
    pub mention_prob: f64,
    /// Users present at stream start.
    pub initial_users: usize,
    /// Probability a tweeting user is brand new (population growth).
    pub new_user_prob: f64,
    /// Probability a mention stays within the author's community. A
    /// geographically collected stream (the paper's is London-only) has
    /// strong conversational communities; this is what gives adaptive
    /// partitioning locality to exploit.
    pub community_prob: f64,
    /// Mean community size.
    pub mean_community: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            peak_rate: 45.0,
            mention_prob: 0.5,
            initial_users: 2000,
            new_user_prob: 0.002,
            community_prob: 0.85,
            mean_community: 50,
        }
    }
}

/// One window of streamed activity.
#[derive(Debug, Clone, PartialEq)]
pub struct MentionBatch {
    /// Window start, in hours from stream start.
    pub hour: f64,
    /// Tweets observed in the window.
    pub tweets: usize,
    /// Mention edges (by user index; indices beyond the previous user count
    /// are new users).
    pub edges: Vec<(usize, usize)>,
    /// Total users after this window.
    pub num_users: usize,
}

impl MentionBatch {
    /// Average tweets per second over a window of `seconds`.
    pub fn tweets_per_sec(&self, seconds: f64) -> f64 {
        self.tweets as f64 / seconds
    }

    /// Re-expresses the window as an [`UpdateBatch`] against a graph that
    /// currently holds `known_users` vertex slots: users beyond that count
    /// become vertex additions (ids align because both sides allocate
    /// densely), every mention becomes an edge addition. Repeat mentions
    /// are rejected at apply time — the graph keeps unique mention ties.
    pub fn to_update_batch(&self, known_users: usize) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for _ in known_users..self.num_users {
            batch.add_vertex(Vec::new());
        }
        for &(a, b) in &self.edges {
            batch.add_edge(a as VertexId, b as VertexId);
        }
        batch
    }
}

/// Generator of diurnal mention traffic.
///
/// # Example
///
/// ```
/// use apg_streams::{TwitterConfig, TwitterStream};
///
/// let mut stream = TwitterStream::new(TwitterConfig::default(), 7);
/// let night = stream.window(4.0, 600.0);  // 10 minutes at 4 am
/// let evening = stream.window(20.0, 600.0); // 10 minutes at 8 pm
/// assert!(evening.tweets > 3 * night.tweets);
/// ```
#[derive(Debug, Clone)]
pub struct TwitterStream {
    config: TwitterConfig,
    rng: StdRng,
    /// One entry per mention endpoint: sampling uniformly = preferential
    /// attachment on attention.
    endpoint_repeats: Vec<usize>,
    /// Community of each user.
    community: Vec<u32>,
    /// Members of each community.
    members: Vec<Vec<usize>>,
    num_users: usize,
    /// Simulated clock for the [`StreamSource`] view, in hours.
    clock_hour: f64,
    /// Window length for the [`StreamSource`] view, in seconds.
    window_secs: f64,
    /// Users already emitted as vertices through the [`StreamSource`] view.
    emitted_users: usize,
    /// Batches emitted through [`StreamSource::next_batch`] (the resume
    /// cursor).
    emitted_batches: u64,
}

impl TwitterStream {
    /// Creates a stream.
    ///
    /// # Panics
    ///
    /// Panics if `initial_users < 2` or probabilities are out of range.
    pub fn new(config: TwitterConfig, seed: u64) -> Self {
        assert!(config.initial_users >= 2, "need at least two users");
        assert!(
            (0.0..=1.0).contains(&config.mention_prob),
            "bad mention_prob"
        );
        assert!(
            (0.0..=1.0).contains(&config.new_user_prob),
            "bad new_user_prob"
        );
        assert!(
            (0.0..=1.0).contains(&config.community_prob),
            "bad community_prob"
        );
        assert!(config.mean_community >= 2, "communities need members");
        let mut stream = TwitterStream {
            config,
            rng: StdRng::seed_from_u64(seed),
            endpoint_repeats: Vec::new(),
            community: Vec::new(),
            members: Vec::new(),
            num_users: 0,
            clock_hour: 0.0,
            window_secs: 600.0,
            emitted_users: config.initial_users,
            emitted_batches: 0,
        };
        for _ in 0..config.initial_users {
            stream.spawn_user();
        }
        stream
    }

    /// Registers a new user into a community.
    fn spawn_user(&mut self) -> usize {
        let id = self.num_users;
        let c = if self.members.is_empty()
            || self.members[self.members.len() - 1].len() >= self.config.mean_community
        {
            self.members.push(Vec::new());
            self.members.len() - 1
        } else {
            self.members.len() - 1
        };
        self.community.push(c as u32);
        self.members[c].push(id);
        self.num_users += 1;
        id
    }

    /// Community of a user (for tests and diagnostics).
    pub fn community_of(&self, user: usize) -> u32 {
        self.community[user]
    }

    /// The diurnal intensity profile: fraction of peak rate at `hour`
    /// (0–24, wraps). Calm overnight, morning rise, evening peak.
    pub fn rate_fraction(hour: f64) -> f64 {
        let h = hour.rem_euclid(24.0);
        let bump = |centre: f64, width: f64, height: f64| -> f64 {
            let mut d = (h - centre).abs();
            d = d.min(24.0 - d); // wrap around midnight
            height * (-d * d / (2.0 * width * width)).exp()
        };
        // Base load + commute/morning bump + evening-social bump.
        (0.12 + bump(9.0, 2.5, 0.45) + bump(20.5, 3.0, 0.88)).min(1.0)
    }

    /// Current tweet rate (tweets/second) at `hour`.
    pub fn rate_at(&self, hour: f64) -> f64 {
        self.config.peak_rate * Self::rate_fraction(hour)
    }

    /// Users known so far.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Positions the [`StreamSource`] clock: batches pulled via
    /// [`StreamSource::next_batch`] start at `start_hour` and each cover
    /// `window_secs` of simulated time (default: midnight, 10-minute
    /// windows).
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive.
    pub fn with_clock(mut self, start_hour: f64, window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window must have positive length");
        self.clock_hour = start_hour;
        self.window_secs = window_secs;
        self
    }

    /// The [`StreamSource`] clock's current hour (wraps daily inside the
    /// rate profile, counts up monotonically here).
    pub fn clock_hour(&self) -> f64 {
        self.clock_hour
    }

    /// Generates the traffic of a window of `seconds` starting at `hour`.
    pub fn window(&mut self, hour: f64, seconds: f64) -> MentionBatch {
        let expected = self.rate_at(hour) * seconds;
        // Poisson-ish tweet count via normal approximation (fine for
        // expected counts >> 1; clamped for tiny windows).
        let noise: f64 = {
            // Box-Muller from two uniforms.
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
            (-2.0 * u1.ln()).sqrt() * u2.cos()
        };
        let tweets = (expected + noise * expected.sqrt()).max(0.0).round() as usize;

        let mut edges = Vec::new();
        for _ in 0..tweets {
            if self.rng.gen_bool(self.config.new_user_prob) {
                self.spawn_user();
            }
            if !self.rng.gen_bool(self.config.mention_prob) {
                continue;
            }
            let author = self.pick_user();
            let mentioned = if self.rng.gen_bool(self.config.community_prob) {
                self.pick_in_community(self.community[author] as usize)
            } else {
                self.pick_user()
            };
            if author != mentioned {
                self.endpoint_repeats.push(author);
                self.endpoint_repeats.push(mentioned);
                edges.push((author, mentioned));
            }
        }
        MentionBatch {
            hour,
            tweets,
            edges,
            num_users: self.num_users,
        }
    }

    /// Preferential pick: mostly proportional to past mention activity,
    /// sometimes uniform (new entrants get attention too).
    fn pick_user(&mut self) -> usize {
        if !self.endpoint_repeats.is_empty() && self.rng.gen_bool(0.75) {
            let idx = self.rng.gen_range(0..self.endpoint_repeats.len());
            self.endpoint_repeats[idx]
        } else {
            self.rng.gen_range(0..self.num_users)
        }
    }

    /// Preferential pick restricted to one community: rejection-sample the
    /// global activity distribution, falling back to a uniform member.
    fn pick_in_community(&mut self, c: usize) -> usize {
        if !self.endpoint_repeats.is_empty() {
            for _ in 0..8 {
                let idx = self.rng.gen_range(0..self.endpoint_repeats.len());
                let pick = self.endpoint_repeats[idx];
                if self.community[pick] as usize == c {
                    return pick;
                }
            }
        }
        let peers = &self.members[c];
        peers[self.rng.gen_range(0..peers.len())]
    }
}

/// The canonical ingestion view: each pull generates one window at the
/// internal clock (see [`TwitterStream::with_clock`]), advances the clock,
/// and re-expresses the window's growth and mentions as deltas. The stream
/// is open-ended.
///
/// Don't interleave direct [`TwitterStream::window`] calls with this:
/// users spawned by a direct window would be emitted as vertex additions
/// on the *next* pull, but its mention edges would be lost.
impl StreamSource for TwitterStream {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        let hour = self.clock_hour;
        let window = self.window(hour, self.window_secs);
        self.clock_hour = hour + self.window_secs / 3600.0;
        let batch = window.to_update_batch(self.emitted_users);
        self.emitted_users = window.num_users;
        self.emitted_batches += 1;
        Some(batch)
    }
}

impl RestartableSource for TwitterStream {
    fn cursor(&self) -> SourceCursor {
        SourceCursor::at(self.emitted_batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_shape_has_trough_and_peak() {
        let at = TwitterStream::rate_fraction;
        assert!(at(4.0) < 0.25, "4am should be calm: {}", at(4.0));
        assert!(at(20.5) > 0.9, "evening should peak: {}", at(20.5));
        assert!(at(9.0) > at(4.0) * 2.0, "morning rise missing");
        // Wrap-around continuity: 23.9h vs 0.1h nearly equal.
        assert!((at(23.9) - at(0.1)).abs() < 0.05);
    }

    #[test]
    fn window_rates_track_profile() {
        let mut s = TwitterStream::new(TwitterConfig::default(), 1);
        let night = s.window(4.0, 600.0);
        let peak = s.window(20.5, 600.0);
        assert!(
            peak.tweets > 3 * night.tweets,
            "{} vs {}",
            peak.tweets,
            night.tweets
        );
        // Peak ~45 tweets/s for 600s ≈ 27000 tweets.
        assert!((20_000..35_000).contains(&peak.tweets), "{}", peak.tweets);
    }

    #[test]
    fn mentions_are_heavy_tailed() {
        let mut s = TwitterStream::new(TwitterConfig::default(), 3);
        let mut degree = std::collections::HashMap::new();
        for w in 0..24 {
            let batch = s.window(w as f64, 300.0);
            for (a, b) in batch.edges {
                *degree.entry(a).or_insert(0usize) += 1;
                *degree.entry(b).or_insert(0usize) += 1;
            }
        }
        let max = *degree.values().max().unwrap();
        let mean = degree.values().sum::<usize>() as f64 / degree.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn population_grows() {
        let mut s = TwitterStream::new(TwitterConfig::default(), 5);
        let before = s.num_users();
        for w in 0..24 {
            s.window(w as f64, 1800.0);
        }
        assert!(s.num_users() > before, "no growth");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TwitterStream::new(TwitterConfig::default(), 9);
        let mut b = TwitterStream::new(TwitterConfig::default(), 9);
        assert_eq!(a.window(10.0, 60.0), b.window(10.0, 60.0));
    }

    #[test]
    fn no_self_mentions() {
        let mut s = TwitterStream::new(TwitterConfig::default(), 11);
        for w in 0..6 {
            for (a, b) in s.window(w as f64 * 4.0, 600.0).edges {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn stream_source_tracks_population_growth() {
        use apg_graph::{DynGraph, Graph};
        let config = TwitterConfig::default();
        let mut s = TwitterStream::new(config, 13).with_clock(18.0, 1800.0);
        let mut g = DynGraph::with_vertices(config.initial_users);
        for _ in 0..8 {
            let batch = s.next_batch().expect("stream is open-ended");
            let report = batch.apply(&mut g);
            // Every scheduled edge lands or is a repeat mention; nothing
            // can reference an unknown user if ids stay aligned.
            assert_eq!(
                report.edges_added + report.rejected,
                batch.num_edge_additions()
            );
        }
        assert_eq!(g.num_vertices(), s.num_users(), "id spaces drifted");
        assert!((s.clock_hour() - 22.0).abs() < 1e-9);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn stream_source_is_deterministic_per_seed() {
        let pull = |seed: u64| {
            let mut s = TwitterStream::new(TwitterConfig::default(), seed).with_clock(9.0, 900.0);
            (0..4).map(|_| s.next_batch().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(pull(3), pull(3));
    }
}
