//! The [`StreamSource`] abstraction and the generator-backed sources.
//!
//! A stream source is anything that emits [`UpdateBatch`]es: the synthetic
//! Twitter and CDR generators, the forest-fire burst, open-ended power-law
//! growth. Consumers — `apg_core`'s `StreamingRunner`, the Pregel engine,
//! experiment drivers — pull batches and apply them through the shared
//! delta model, so every workload reaches the graph by the same path.
//!
//! # Id alignment
//!
//! Sources allocate vertex ids densely, in emission order, exactly as
//! [`DynGraph`] allocates slots. The contract is:
//! seed the consumer graph with the source's initial population (e.g.
//! `DynGraph::with_vertices(config.initial_users)`), then apply **every**
//! batch, in order, to that one graph. Ids then stay aligned on both sides
//! without ever being transmitted.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use apg_graph::gen::{forest_fire, ForestFireConfig};
use apg_graph::{DynGraph, Graph, UpdateBatch, VertexId};

/// A producer of graph-update batches.
///
/// `next_batch` returns `None` when the stream is exhausted; open-ended
/// generators (Twitter, CDR, power-law growth) never return `None` and the
/// consumer decides when to stop pulling.
pub trait StreamSource {
    /// The next buffered batch of updates, or `None` at end of stream.
    fn next_batch(&mut self) -> Option<UpdateBatch>;
}

impl<S: StreamSource + ?Sized> StreamSource for &mut S {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        (**self).next_batch()
    }
}

impl<S: StreamSource + ?Sized> StreamSource for Box<S> {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        (**self).next_batch()
    }
}

/// Position of a deterministic stream source: how many batches it has
/// emitted since construction.
///
/// Because every source in this crate is a pure function of its
/// constructor arguments (config, seed, base graph, clock), the emission
/// count *is* the full resume cursor: reconstruct the source with the same
/// arguments, [`RestartableSource::fast_forward`] to the cursor, and the
/// next batch pulled is byte-identical to the one the original would have
/// emitted. This is what lets a killed streaming run restart from a
/// checkpoint without persisting generator internals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceCursor {
    /// Batches emitted so far.
    pub batches_emitted: u64,
}

impl SourceCursor {
    /// Cursor at `batches_emitted` batches.
    pub fn at(batches_emitted: u64) -> Self {
        SourceCursor { batches_emitted }
    }
}

impl apg_persist::Encode for SourceCursor {
    fn encode(&self, enc: &mut apg_persist::Encoder) {
        self.batches_emitted.encode(enc);
    }
}

impl apg_persist::Decode for SourceCursor {
    fn decode(dec: &mut apg_persist::Decoder<'_>) -> Result<Self, apg_persist::DecodeError> {
        Ok(SourceCursor {
            batches_emitted: u64::decode(dec)?,
        })
    }
}

/// A [`StreamSource`] that can report its position and be repositioned
/// after a restart.
///
/// The contract: a freshly constructed source with the same constructor
/// arguments, fast-forwarded to a cursor captured from another instance,
/// emits exactly the batch sequence the original would have emitted from
/// that point on. All four source families in this crate implement it; the
/// default [`RestartableSource::fast_forward`] replays (and discards) the
/// skipped batches, which re-advances the internal RNG and clocks through
/// the same deterministic path the original took.
pub trait RestartableSource: StreamSource {
    /// The current position.
    fn cursor(&self) -> SourceCursor;

    /// Advances this source to `cursor` by re-emitting and discarding the
    /// intervening batches.
    ///
    /// # Panics
    ///
    /// Panics if the source is already past `cursor` (streams cannot
    /// rewind) or ends before reaching it (the cursor belongs to a source
    /// with different arguments).
    fn fast_forward(&mut self, cursor: SourceCursor)
    where
        Self: Sized,
    {
        assert!(
            self.cursor() <= cursor,
            "cannot rewind a stream source: at {:?}, asked for {cursor:?}",
            self.cursor()
        );
        while self.cursor() < cursor {
            assert!(
                self.next_batch().is_some(),
                "stream ended before reaching {cursor:?}; was this cursor \
                 captured from a source with the same constructor arguments?"
            );
        }
    }
}

/// Computes a forest-fire expansion of `graph` as an [`UpdateBatch`]
/// *without mutating it*: the burn runs on a shadow copy, and the batch
/// re-expresses every new vertex and edge as deltas.
///
/// Applying the returned batch to `graph` (or to any structurally equal
/// graph — an engine holding the same topology, say) reproduces the
/// expansion exactly.
pub fn forest_fire_delta(graph: &DynGraph, cfg: &ForestFireConfig) -> UpdateBatch {
    let mut shadow = graph.clone();
    let before_slots = shadow.num_vertices();
    let new_ids = forest_fire(&mut shadow, cfg);
    let mut batch = UpdateBatch::new();
    for &v in &new_ids {
        let existing: Vec<VertexId> = shadow
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| (w as usize) < before_slots)
            .collect();
        batch.add_vertex(existing);
    }
    for (i, &v) in new_ids.iter().enumerate() {
        for &w in shadow.neighbors(v) {
            if (w as usize) >= before_slots && w > v {
                batch.connect_new(i, w as usize - before_slots);
            }
        }
    }
    batch
}

/// A one-shot forest-fire burst, optionally split into several batches for
/// batch-size experiments.
///
/// The burn is precomputed against a snapshot of the base graph; each new
/// vertex's delta lists its neighbours among *earlier* ids only (ids are
/// deterministic, so an earlier burst vertex is referenced by its concrete
/// future id), which lets the burst split at any boundary without losing
/// intra-burst edges.
#[derive(Debug, Clone)]
pub struct ForestFireSource {
    pending: VecDeque<UpdateBatch>,
    emitted: u64,
}

impl ForestFireSource {
    /// Precomputes the burst over `graph`, split into batches of
    /// `batch_size` new vertices each.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, or (via the burn itself) if the graph
    /// has no live vertex to seed from while `cfg.new_vertices > 0`.
    pub fn new(graph: &DynGraph, cfg: &ForestFireConfig, batch_size: usize) -> Self {
        assert!(batch_size > 0, "need a positive batch size");
        let mut shadow = graph.clone();
        let new_ids = forest_fire(&mut shadow, cfg);
        let mut pending = VecDeque::new();
        for chunk in new_ids.chunks(batch_size) {
            let mut batch = UpdateBatch::new();
            for &v in chunk {
                let earlier: Vec<VertexId> = shadow
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| w < v)
                    .collect();
                batch.add_vertex(earlier);
            }
            pending.push_back(batch);
        }
        ForestFireSource {
            pending,
            emitted: 0,
        }
    }

    /// Batches remaining to be emitted.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl StreamSource for ForestFireSource {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        let batch = self.pending.pop_front();
        if batch.is_some() {
            self.emitted += 1;
        }
        batch
    }
}

impl RestartableSource for ForestFireSource {
    fn cursor(&self) -> SourceCursor {
        SourceCursor::at(self.emitted)
    }
}

/// Open-ended preferential-attachment growth: every batch adds
/// `batch_size` vertices, each linking to `edges_per_vertex` distinct
/// targets drawn proportionally to degree (the Barabási–Albert rule the
/// paper's power-law datasets are built from, emitted as a stream).
#[derive(Debug, Clone)]
pub struct PowerLawGrowth {
    rng: StdRng,
    /// One entry per edge endpoint; uniform sampling = preferential
    /// attachment. Seeded with one entry per live base vertex so isolated
    /// vertices can attract their first link.
    repeats: Vec<VertexId>,
    next_id: VertexId,
    edges_per_vertex: usize,
    batch_size: usize,
    emitted: u64,
}

impl PowerLawGrowth {
    /// Creates a growth stream over the current population of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the graph has no live vertices.
    pub fn new(graph: &DynGraph, edges_per_vertex: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "need a positive batch size");
        assert!(
            graph.num_live_vertices() > 0,
            "growth needs at least one live vertex to attach to"
        );
        let mut repeats = Vec::with_capacity(2 * graph.num_edges() + graph.num_live_vertices());
        for (u, v) in graph.edges() {
            repeats.push(u);
            repeats.push(v);
        }
        repeats.extend(graph.vertices());
        PowerLawGrowth {
            rng: StdRng::seed_from_u64(seed),
            repeats,
            next_id: graph.num_vertices() as VertexId,
            edges_per_vertex,
            batch_size,
            emitted: 0,
        }
    }
}

impl StreamSource for PowerLawGrowth {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        let mut batch = UpdateBatch::new();
        for _ in 0..self.batch_size {
            let v = self.next_id;
            let mut targets: Vec<VertexId> = Vec::with_capacity(self.edges_per_vertex);
            // Bounded rejection sampling: tiny populations may not offer
            // `edges_per_vertex` distinct targets.
            let mut attempts = 0usize;
            while targets.len() < self.edges_per_vertex && attempts < 16 * self.edges_per_vertex {
                attempts += 1;
                let pick = self.repeats[self.rng.gen_range(0..self.repeats.len())];
                if pick != v && !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
            for &t in &targets {
                self.repeats.push(v);
                self.repeats.push(t);
            }
            batch.add_vertex(targets);
            self.next_id += 1;
        }
        self.emitted += 1;
        Some(batch)
    }
}

impl RestartableSource for PowerLawGrowth {
    fn cursor(&self) -> SourceCursor {
        SourceCursor::at(self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen::mesh3d;

    fn base() -> DynGraph {
        DynGraph::from(&mesh3d(6, 6, 6))
    }

    #[test]
    fn forest_fire_delta_matches_in_place_burn() {
        let g = base();
        let cfg = ForestFireConfig::burst(30, 7);
        // In-place burn on one copy...
        let mut direct = g.clone();
        forest_fire(&mut direct, &cfg);
        // ...delta-expressed burn applied to another.
        let mut replayed = g.clone();
        let batch = forest_fire_delta(&g, &cfg);
        let report = batch.apply(&mut replayed);
        assert_eq!(report.new_vertices.len(), 30);
        assert_eq!(replayed, direct, "delta burst must reproduce the burn");
    }

    #[test]
    fn chunked_burst_source_reproduces_single_batch_burst() {
        let g = base();
        let cfg = ForestFireConfig::burst(25, 3);
        let mut whole = g.clone();
        forest_fire_delta(&g, &cfg).apply(&mut whole);

        let mut chunked = g.clone();
        let mut source = ForestFireSource::new(&g, &cfg, 4);
        assert_eq!(source.remaining(), 7); // ceil(25 / 4)
        let mut batches = 0;
        while let Some(batch) = source.next_batch() {
            batch.apply(&mut chunked);
            batches += 1;
        }
        assert_eq!(batches, 7);
        assert_eq!(chunked, whole, "chunking must not lose intra-burst edges");
    }

    #[test]
    fn fast_forward_reproduces_every_source_family() {
        use crate::{CdrConfig, CdrStream, TwitterConfig, TwitterStream};
        let g = base();

        // For each family: pull `skip` batches on one instance, capture the
        // cursor, fast-forward a fresh instance to it, and require the next
        // three batches to be identical.
        fn check<S: RestartableSource>(mut original: S, mut resumed: S, skip: u64) {
            for _ in 0..skip {
                original
                    .next_batch()
                    .expect("stream too short for the test");
            }
            assert_eq!(original.cursor(), SourceCursor::at(skip));
            resumed.fast_forward(original.cursor());
            for i in 0..3 {
                assert_eq!(
                    original.next_batch(),
                    resumed.next_batch(),
                    "batch {i} after resume diverged"
                );
            }
        }

        let cdr = CdrConfig {
            initial_subscribers: 1_000,
            ..CdrConfig::default()
        };
        check(CdrStream::new(cdr, 7), CdrStream::new(cdr, 7), 9);

        let tw = TwitterConfig {
            initial_users: 500,
            ..TwitterConfig::default()
        };
        check(
            TwitterStream::new(tw, 7).with_clock(6.0, 600.0),
            TwitterStream::new(tw, 7).with_clock(6.0, 600.0),
            5,
        );

        let cfg = ForestFireConfig::burst(40, 3);
        check(
            ForestFireSource::new(&g, &cfg, 5),
            ForestFireSource::new(&g, &cfg, 5),
            4,
        );

        check(
            PowerLawGrowth::new(&g, 3, 16, 7),
            PowerLawGrowth::new(&g, 3, 16, 7),
            6,
        );
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn fast_forward_rejects_rewinding() {
        let g = base();
        let mut s = PowerLawGrowth::new(&g, 3, 8, 1);
        s.next_batch();
        s.next_batch();
        s.fast_forward(SourceCursor::at(1));
    }

    #[test]
    #[should_panic(expected = "stream ended before reaching")]
    fn fast_forward_rejects_cursors_past_the_end() {
        let g = base();
        let cfg = ForestFireConfig::burst(10, 3);
        let mut s = ForestFireSource::new(&g, &cfg, 5);
        s.fast_forward(SourceCursor::at(99));
    }

    #[test]
    fn power_law_growth_is_heavy_tailed_and_deterministic() {
        let g = DynGraph::with_vertices(50);
        let run = |seed: u64| {
            let mut grown = g.clone();
            let mut source = PowerLawGrowth::new(&g, 3, 20, seed);
            for _ in 0..25 {
                source.next_batch().unwrap().apply(&mut grown);
            }
            grown
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed, same growth");
        assert_eq!(a.num_live_vertices(), 50 + 25 * 20);
        let max_degree = a.vertices().map(|v| a.degree(v)).max().unwrap();
        let mean = 2.0 * a.num_edges() as f64 / a.num_live_vertices() as f64;
        assert!(
            max_degree as f64 > 4.0 * mean,
            "no hub: max {max_degree}, mean {mean:.1}"
        );
    }
}
