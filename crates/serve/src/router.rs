//! The query router: read-only execution over a partitioned graph
//! snapshot.

use std::collections::VecDeque;
use std::time::Instant;

use apg_exec::fanout;
use apg_graph::{DynGraph, Graph, VertexId};
use apg_partition::Partitioning;

use crate::query::{Query, QueryOutcome};
use crate::stats::ServeStats;
use crate::workload::QueryWorkload;

/// Routes queries to their anchor's serving domain and executes them
/// against a borrowed `(graph, assignment)` snapshot.
///
/// The router holds shared borrows only — it can never mutate the graph or
/// the assignment, which is what lets the streaming runner interleave serve
/// rounds between batches and assert afterwards that serving dirtied
/// nothing. Each query executes at the partition owning its anchor; every
/// vertex the traversal reaches is one *hop*, **local** when that vertex
/// lives in the anchor's partition and **remote** otherwise.
///
/// See the [crate docs](crate) for a worked example.
pub struct QueryRouter<'a> {
    graph: &'a DynGraph,
    assignment: &'a Partitioning,
}

impl<'a> QueryRouter<'a> {
    /// A router over the given snapshot. The assignment must cover every
    /// vertex slot of the graph (checked on each query in debug builds).
    pub fn new(graph: &'a DynGraph, assignment: &'a Partitioning) -> Self {
        debug_assert!(
            assignment.num_vertices() >= graph.num_vertices(),
            "assignment covers {} slots but the graph has {}",
            assignment.num_vertices(),
            graph.num_vertices()
        );
        QueryRouter { graph, assignment }
    }

    /// Answers one query. Tombstoned anchors yield
    /// [`QueryOutcome::missing`]; the query stream may race with removals,
    /// so this is an expected outcome, not an error.
    pub fn answer(&self, query: &Query) -> QueryOutcome {
        let anchor = query.anchor();
        if !self.graph.is_vertex(anchor) {
            return QueryOutcome::missing();
        }
        match *query {
            Query::VertexLookup(_) => QueryOutcome {
                found: true,
                result_size: 1,
                hops: 0,
                local_hops: 0,
            },
            // A neighborhood read is exactly a 1-hop traversal; routing
            // both through the same BFS keeps the accounting semantics
            // identical by construction.
            Query::Neighborhood(_) => self.k_hop(anchor, 1),
            Query::KHop { k, .. } => self.k_hop(anchor, k),
        }
    }

    /// Every live vertex within `k` hops of `anchor` (anchor excluded), in
    /// breadth-first discovery order. The reference result the correctness
    /// tests pin [`Query::KHop`] outcomes against.
    pub fn k_hop_vertices(&self, anchor: VertexId, k: usize) -> Vec<VertexId> {
        if !self.graph.is_vertex(anchor) {
            return Vec::new();
        }
        let mut reached = Vec::new();
        self.bfs(anchor, k, |v, _| reached.push(v));
        reached
    }

    /// Bounded BFS with hop accounting. Each *discovered* vertex is one
    /// hop — a traversal fetches every discovered vertex exactly once, from
    /// whichever partition owns it.
    fn k_hop(&self, anchor: VertexId, k: usize) -> QueryOutcome {
        let home = self.assignment.partition_of(anchor);
        let mut outcome = QueryOutcome {
            found: true,
            result_size: 0,
            hops: 0,
            local_hops: 0,
        };
        self.bfs(anchor, k, |v, _| {
            outcome.result_size += 1;
            outcome.hops += 1;
            if self.assignment.partition_of(v) == home {
                outcome.local_hops += 1;
            }
        });
        outcome
    }

    /// Breadth-first traversal to depth `k`, invoking `visit(vertex,
    /// depth)` once per discovered vertex (anchor excluded), in discovery
    /// order. Neighbour lists are sorted, so discovery order — and with it
    /// every outcome — is deterministic.
    fn bfs(&self, anchor: VertexId, k: usize, mut visit: impl FnMut(VertexId, usize)) {
        if k == 0 {
            return;
        }
        let mut seen = vec![false; self.graph.num_vertices()];
        seen[anchor as usize] = true;
        let mut frontier = VecDeque::new();
        frontier.push_back((anchor, 0usize));
        while let Some((v, depth)) = frontier.pop_front() {
            for &w in self.graph.neighbors(v) {
                if seen[w as usize] {
                    continue;
                }
                seen[w as usize] = true;
                visit(w, depth + 1);
                if depth + 1 < k {
                    frontier.push_back((w, depth + 1));
                }
            }
        }
    }

    /// Serves one round of `workload` and aggregates the outcomes.
    ///
    /// Queries are generated for `round`, answered with up to `parallelism`
    /// threads via the ordered [`fanout`] primitive, and folded into
    /// [`ServeStats`] in query order — so the result is identical at every
    /// parallelism level (only `wall_ms`, which equality ignores, may
    /// differ).
    pub fn serve_round(
        &self,
        workload: &QueryWorkload,
        round: u64,
        parallelism: usize,
    ) -> ServeStats {
        let started = Instant::now();
        let queries = workload.generate(self.graph, round);
        let kinds: Vec<_> = queries.iter().map(|q| q.kind()).collect();
        let outcomes = fanout::map_items(parallelism, queries, |_, q| self.answer(&q));
        let mut stats = ServeStats {
            round,
            ..ServeStats::default()
        };
        for (kind, outcome) in kinds.iter().zip(&outcomes) {
            stats.absorb(*kind, outcome);
        }
        stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QueryMix;

    /// Two triangles bridged by one edge, split across two partitions:
    ///
    /// ```text
    ///   0 - 1        3 - 4
    ///    \ /    ==    \ /
    ///     2 ---------- 5
    ///   [p0 p0 p0]  [p1 p1 p1]
    /// ```
    fn bridged_triangles() -> (DynGraph, Partitioning) {
        let mut g = DynGraph::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 5)] {
            g.add_edge(u, v);
        }
        let p = Partitioning::from_assignment(vec![0, 0, 0, 1, 1, 1], 2);
        (g, p)
    }

    #[test]
    fn lookup_has_no_hops() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        let o = r.answer(&Query::VertexLookup(4));
        assert!(o.found);
        assert_eq!((o.result_size, o.hops, o.local_hops), (1, 0, 0));
    }

    #[test]
    fn neighborhood_counts_each_neighbor_as_a_hop() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        // Vertex 2's neighbours: 0, 1 (local) and 5 (remote).
        let o = r.answer(&Query::Neighborhood(2));
        assert_eq!((o.result_size, o.hops, o.local_hops), (3, 3, 2));
        assert_eq!(o.remote_hops(), 1);
    }

    #[test]
    fn khop_counts_discovery_hops_against_the_anchor_domain() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        // From 0: depth 1 reaches {1, 2}, depth 2 reaches {5}. 5 is remote.
        let o = r.answer(&Query::KHop { anchor: 0, k: 2 });
        assert_eq!((o.hops, o.local_hops), (3, 2));
        // Depth 3 pulls in the rest of the far triangle.
        let o = r.answer(&Query::KHop { anchor: 0, k: 3 });
        assert_eq!((o.hops, o.local_hops), (5, 2));
    }

    #[test]
    fn khop_one_equals_neighborhood() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        for v in 0..6 {
            assert_eq!(
                r.answer(&Query::Neighborhood(v)),
                r.answer(&Query::KHop { anchor: v, k: 1 }),
                "anchor {v}"
            );
        }
    }

    #[test]
    fn khop_zero_reaches_nothing() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        let o = r.answer(&Query::KHop { anchor: 0, k: 0 });
        assert!(o.found);
        assert_eq!((o.result_size, o.hops), (0, 0));
    }

    #[test]
    fn tombstoned_anchor_misses() {
        let (mut g, p) = bridged_triangles();
        g.remove_vertex(3);
        let r = QueryRouter::new(&g, &p);
        for q in [
            Query::VertexLookup(3),
            Query::Neighborhood(3),
            Query::KHop { anchor: 3, k: 2 },
        ] {
            assert_eq!(r.answer(&q), QueryOutcome::missing());
        }
        // Traversals route around the tombstone: from 4, depth 2 now only
        // reaches 5 then 2.
        let reached = r.k_hop_vertices(4, 2);
        assert_eq!(reached, vec![5, 2]);
    }

    #[test]
    fn k_hop_vertices_is_discovery_ordered() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        assert_eq!(r.k_hop_vertices(0, 1), vec![1, 2]);
        assert_eq!(r.k_hop_vertices(0, 2), vec![1, 2, 5]);
        assert_eq!(r.k_hop_vertices(0, 9), vec![1, 2, 5, 3, 4]);
    }

    #[test]
    fn serve_round_is_parallelism_invariant() {
        let (g, p) = bridged_triangles();
        let r = QueryRouter::new(&g, &p);
        let w = QueryWorkload::new(QueryMix::Uniform, 64, 11);
        let serial = r.serve_round(&w, 5, 1);
        assert_eq!(serial, r.serve_round(&w, 5, 2));
        assert_eq!(serial, r.serve_round(&w, 5, 8));
        assert_eq!(serial.queries, 64);
        assert_eq!(serial.round, 5);
    }
}
