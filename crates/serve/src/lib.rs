//! Partition-aware query serving for the adaptive partitioning workspace.
//!
//! The paper's argument is that adaptive repartitioning keeps traversals
//! *local* as the graph churns — this crate is the serving layer that turns
//! that claim into a measured workload. Each partition of a
//! [`Partitioning`](apg_partition::Partitioning) is treated as an **owned
//! serving domain**: a query is routed to the partition owning its anchor
//! vertex, executes there against the live
//! [`DynGraph`](apg_graph::DynGraph), and every traversal hop is accounted
//! as **local** (the reached vertex lives in the anchor's partition) or
//! **remote** (it crosses the serving-domain boundary and would require a
//! fetch from another partition's owner).
//!
//! Three pieces:
//!
//! * [`Query`] — the request vocabulary: point lookups, one-hop
//!   neighborhood reads, and bounded k-hop traversals.
//! * [`QueryWorkload`] / [`QueryMix`] — deterministic query generation.
//!   Every query's randomness is keyed by `(seed, query, round)` through
//!   the same [`vertex_rng`](apg_exec::vertex_rng) discipline the decision
//!   sweep uses — never by thread — so a served workload is byte-identical
//!   at any parallelism level.
//! * [`QueryRouter`] — answers queries read-only over a borrowed graph +
//!   assignment snapshot and aggregates per-round [`ServeStats`]; fan-out
//!   over queries uses the ordered [`apg_exec::fanout`] primitive, keeping
//!   the aggregate a pure function of `(graph, assignment, workload,
//!   round)`.
//!
//! `apg-core`'s `StreamingRunner` interleaves one serve round per ingested
//! batch, producing a `ServeStats` timeline alongside the ingestion
//! timeline — the serving bench sweeps query mix × churn rate ×
//! partitioner arm over exactly that loop.
//!
//! # Example
//!
//! ```
//! use apg_graph::{DynGraph, Graph};
//! use apg_partition::Partitioning;
//! use apg_serve::{Query, QueryMix, QueryRouter, QueryWorkload};
//!
//! let mut g = DynGraph::with_vertices(6);
//! for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
//!     g.add_edge(u, v);
//! }
//! let p = Partitioning::from_assignment(vec![0, 0, 0, 1, 1, 1], 2);
//! let router = QueryRouter::new(&g, &p);
//!
//! // A 2-hop traversal anchored at vertex 0 stays inside partition 0.
//! let outcome = router.answer(&Query::KHop { anchor: 0, k: 2 });
//! assert_eq!(outcome.hops, 2);
//! assert_eq!(outcome.local_hops, 2);
//!
//! // A deterministic round of mixed queries, reproducible at any
//! // parallelism.
//! let workload = QueryWorkload::new(QueryMix::Uniform, 32, 7);
//! let stats = router.serve_round(&workload, 0, 4);
//! assert_eq!(stats, router.serve_round(&workload, 0, 1));
//! ```

pub mod query;
pub mod router;
pub mod stats;
pub mod workload;

pub use query::{Query, QueryKind, QueryOutcome};
pub use router::QueryRouter;
pub use stats::ServeStats;
pub use workload::{QueryMix, QueryWorkload};
