//! Per-round serving aggregates.

use serde::{Deserialize, Serialize};

use crate::query::{QueryKind, QueryOutcome};

/// Aggregate outcome of one served round.
///
/// Built by `QueryRouter::serve_round` as a fold over per-query
/// [`QueryOutcome`]s in query order, so it is a pure function of
/// `(graph, assignment, workload, round)` — parallelism never shows in it.
/// The one observational field, `wall_ms`, is excluded from equality (the
/// same convention as `apg-core`'s `TimelineStats`): two rounds compare
/// equal iff their deterministic fields agree.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Which serve round this is (the streaming runner uses the batch
    /// index).
    pub round: u64,
    /// Queries served.
    pub queries: usize,
    /// Point lookups among them.
    pub lookups: usize,
    /// Neighborhood reads among them.
    pub neighborhoods: usize,
    /// K-hop traversals among them.
    pub khops: usize,
    /// Queries whose anchor was not a live vertex.
    pub misses: usize,
    /// Total traversal hops across all queries.
    pub hops: usize,
    /// Hops that stayed inside the anchor's partition.
    pub local_hops: usize,
    /// Total result vertices returned.
    pub vertices_reached: usize,
    /// Wall-clock serve time in milliseconds. Observational — ignored by
    /// `==`.
    pub wall_ms: f64,
}

impl ServeStats {
    /// Folds one query's outcome into the aggregate.
    pub fn absorb(&mut self, kind: QueryKind, outcome: &QueryOutcome) {
        self.queries += 1;
        match kind {
            QueryKind::VertexLookup => self.lookups += 1,
            QueryKind::Neighborhood => self.neighborhoods += 1,
            QueryKind::KHop => self.khops += 1,
        }
        if !outcome.found {
            self.misses += 1;
        }
        self.hops += outcome.hops;
        self.local_hops += outcome.local_hops;
        self.vertices_reached += outcome.result_size;
    }

    /// Hops that crossed a partition boundary.
    pub fn remote_hops(&self) -> usize {
        self.hops - self.local_hops
    }

    /// Percentage of hops that stayed in the anchor's partition
    /// (100.0 when the round performed no hops).
    pub fn local_hop_pct(&self) -> f64 {
        if self.hops == 0 {
            100.0
        } else {
            100.0 * self.local_hops as f64 / self.hops as f64
        }
    }

    /// Mean traversal hops per served query (0.0 for an empty round).
    pub fn hops_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hops as f64 / self.queries as f64
        }
    }

    /// Every field that must be identical across parallelism levels — the
    /// basis of `==`, excluding the wall-clock measurement.
    pub fn deterministic_fields(&self) -> [u64; 9] {
        [
            self.round,
            self.queries as u64,
            self.lookups as u64,
            self.neighborhoods as u64,
            self.khops as u64,
            self.misses as u64,
            self.hops as u64,
            self.local_hops as u64,
            self.vertices_reached as u64,
        ]
    }
}

impl PartialEq for ServeStats {
    fn eq(&self, other: &Self) -> bool {
        self.deterministic_fields() == other.deterministic_fields()
    }
}

impl Eq for ServeStats {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_by_kind() {
        let mut s = ServeStats::default();
        s.absorb(
            QueryKind::VertexLookup,
            &QueryOutcome {
                found: true,
                result_size: 1,
                hops: 0,
                local_hops: 0,
            },
        );
        s.absorb(
            QueryKind::KHop,
            &QueryOutcome {
                found: true,
                result_size: 5,
                hops: 5,
                local_hops: 3,
            },
        );
        s.absorb(QueryKind::Neighborhood, &QueryOutcome::missing());
        assert_eq!(s.queries, 3);
        assert_eq!((s.lookups, s.neighborhoods, s.khops), (1, 1, 1));
        assert_eq!(s.misses, 1);
        assert_eq!((s.hops, s.local_hops, s.remote_hops()), (5, 3, 2));
        assert_eq!(s.vertices_reached, 6);
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mut a = ServeStats {
            round: 2,
            queries: 10,
            hops: 7,
            local_hops: 4,
            ..ServeStats::default()
        };
        let mut b = a;
        a.wall_ms = 1.0;
        b.wall_ms = 999.0;
        assert_eq!(a, b);
        b.local_hops = 5;
        assert_ne!(a, b);
    }

    #[test]
    fn ratios_handle_empty_rounds() {
        let s = ServeStats::default();
        assert_eq!(s.local_hop_pct(), 100.0);
        assert_eq!(s.hops_per_query(), 0.0);
        let s = ServeStats {
            queries: 4,
            hops: 10,
            local_hops: 2,
            ..ServeStats::default()
        };
        assert_eq!(s.local_hop_pct(), 20.0);
        assert_eq!(s.hops_per_query(), 2.5);
    }
}
