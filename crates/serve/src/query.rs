//! The serving layer's request vocabulary and per-query accounting.

use apg_graph::VertexId;
use serde::{Deserialize, Serialize};

/// One request against the partitioned graph.
///
/// Every query has an *anchor* vertex; the router executes the query at the
/// partition owning the anchor (its serving domain) and accounts each
/// traversal hop as local or remote relative to that domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// Point read of one vertex (existence, degree, owner). No traversal.
    VertexLookup(VertexId),
    /// One-hop read: the anchor's full adjacency list. Each neighbour is
    /// one hop.
    Neighborhood(VertexId),
    /// Bounded traversal: every vertex within `k` hops of the anchor
    /// (breadth-first). Each *discovered* vertex is one hop.
    KHop {
        /// Vertex the traversal starts from.
        anchor: VertexId,
        /// Maximum traversal depth (`k = 1` is equivalent to
        /// [`Query::Neighborhood`] in hop accounting).
        k: usize,
    },
}

impl Query {
    /// The query's anchor vertex — what the router routes on.
    pub fn anchor(&self) -> VertexId {
        match *self {
            Query::VertexLookup(v) | Query::Neighborhood(v) | Query::KHop { anchor: v, .. } => v,
        }
    }

    /// The query's kind (for mix accounting).
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::VertexLookup(_) => QueryKind::VertexLookup,
            Query::Neighborhood(_) => QueryKind::Neighborhood,
            Query::KHop { .. } => QueryKind::KHop,
        }
    }
}

/// Discriminant of [`Query`], used by [`crate::ServeStats`] to report the
/// served mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Point read.
    VertexLookup,
    /// One-hop adjacency read.
    Neighborhood,
    /// Bounded breadth-first traversal.
    KHop,
}

/// What answering one query cost and produced.
///
/// A *hop* is one vertex reached by the traversal (a neighbour returned by
/// a [`Query::Neighborhood`], a vertex discovered by a [`Query::KHop`]);
/// it is **local** when the reached vertex lives in the anchor's partition
/// — the query's serving domain — and **remote** when fetching it would
/// cross a partition boundary. [`Query::VertexLookup`] performs no
/// traversal and contributes zero hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Whether the anchor was a live vertex (tombstoned anchors answer
    /// empty — the stream may race with removals).
    pub found: bool,
    /// Vertices in the result: 1 for a successful lookup, the neighbour
    /// count for a neighborhood read, the number of vertices within `k`
    /// hops (anchor excluded) for a traversal.
    pub result_size: usize,
    /// Traversal hops performed.
    pub hops: usize,
    /// Hops whose reached vertex lives in the anchor's partition.
    pub local_hops: usize,
}

impl QueryOutcome {
    /// An empty outcome for a query whose anchor is not live.
    pub fn missing() -> Self {
        QueryOutcome {
            found: false,
            result_size: 0,
            hops: 0,
            local_hops: 0,
        }
    }

    /// Hops that crossed the serving-domain boundary.
    pub fn remote_hops(&self) -> usize {
        self.hops - self.local_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_and_kind_agree_across_variants() {
        let qs = [
            Query::VertexLookup(3),
            Query::Neighborhood(3),
            Query::KHop { anchor: 3, k: 2 },
        ];
        for q in qs {
            assert_eq!(q.anchor(), 3);
        }
        assert_eq!(qs[0].kind(), QueryKind::VertexLookup);
        assert_eq!(qs[1].kind(), QueryKind::Neighborhood);
        assert_eq!(qs[2].kind(), QueryKind::KHop);
    }

    #[test]
    fn missing_outcome_is_empty() {
        let o = QueryOutcome::missing();
        assert!(!o.found);
        assert_eq!(
            (o.result_size, o.hops, o.local_hops, o.remote_hops()),
            (0, 0, 0, 0)
        );
    }
}
