//! Deterministic query-workload generation.
//!
//! A [`QueryWorkload`] turns `(graph, round)` into a vector of queries with
//! every random draw keyed by `(seed, query, round)` through
//! [`vertex_rng`] — the workspace's data-keyed RNG discipline. Nothing is
//! keyed by thread, and no query's draws depend on any other query's, so a
//! served round is byte-reproducible at any parallelism and the generation
//! order is irrelevant. Generation reads the graph only (never the
//! assignment), so every partitioner arm of a comparison serves the
//! *identical* query stream.

use apg_exec::vertex_rng;
use apg_graph::{DynGraph, Graph, VertexId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::query::Query;

/// Salt folded into the workload seed so query draws live on a different
/// stream than the decision sweep's per-vertex draws, even under equal
/// seeds.
const QUERY_SALT: u64 = 0x5e_7e_5a_17_5e_7e_5a_17;

/// Salt for the hotspot table of [`QueryMix::CommunityBiased`].
const HOTSPOT_SALT: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// Number of hotspot anchors a community-biased workload concentrates on.
const HOTSPOTS: u64 = 16;

/// How query anchors are drawn from the live vertex population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMix {
    /// Anchors uniform over live vertices — every user equally active.
    Uniform,
    /// Anchors biased towards high-degree vertices (best-of-four uniform
    /// candidates by degree) — traffic concentrates on hubs.
    DegreeBiased,
    /// Anchors concentrated on a small fixed set of hotspot vertices and
    /// their immediate neighbourhoods, with a skew towards the first
    /// hotspots — traffic concentrates on a few communities.
    CommunityBiased,
}

impl QueryMix {
    /// Short label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            QueryMix::Uniform => "uniform",
            QueryMix::DegreeBiased => "degree-biased",
            QueryMix::CommunityBiased => "community-biased",
        }
    }
}

/// A reproducible query stream: `generate(graph, round)` yields the round's
/// queries as a pure function of `(graph, seed, round)`.
///
/// The kind of each query is drawn from the configured
/// lookup/neighborhood/k-hop weights (default 1 : 2 : 2), its anchor from
/// the configured [`QueryMix`].
///
/// # Example
///
/// ```
/// use apg_graph::DynGraph;
/// use apg_serve::{QueryMix, QueryWorkload};
///
/// let g = {
///     let mut g = DynGraph::with_vertices(10);
///     for v in 1..10 {
///         g.add_edge(0, v);
///     }
///     g
/// };
/// let w = QueryWorkload::new(QueryMix::DegreeBiased, 8, 42).khop_depth(3);
/// let round0 = w.generate(&g, 0);
/// assert_eq!(round0.len(), 8);
/// assert_eq!(round0, w.generate(&g, 0), "same key, same queries");
/// assert_ne!(round0, w.generate(&g, 1), "rounds draw distinct streams");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Anchor distribution.
    pub mix: QueryMix,
    /// Queries generated per round.
    pub queries_per_round: usize,
    /// Traversal depth of generated [`Query::KHop`] queries.
    pub khop_k: usize,
    /// Relative weights of lookup / neighborhood / k-hop queries.
    pub kind_weights: [u32; 3],
    /// Workload seed (independent of the partitioner's seed).
    pub seed: u64,
}

impl QueryWorkload {
    /// A workload with the default kind mix (1 lookup : 2 neighborhood :
    /// 2 k-hop) and 2-hop traversals.
    pub fn new(mix: QueryMix, queries_per_round: usize, seed: u64) -> Self {
        QueryWorkload {
            mix,
            queries_per_round,
            khop_k: 2,
            kind_weights: [1, 2, 2],
            seed,
        }
    }

    /// Sets the traversal depth of generated k-hop queries.
    pub fn khop_depth(mut self, k: usize) -> Self {
        self.khop_k = k;
        self
    }

    /// Sets the relative lookup / neighborhood / k-hop weights.
    ///
    /// # Panics
    ///
    /// Panics if all three weights are zero.
    pub fn weights(mut self, lookup: u32, neighborhood: u32, khop: u32) -> Self {
        assert!(
            lookup + neighborhood + khop > 0,
            "at least one query kind must have weight"
        );
        self.kind_weights = [lookup, neighborhood, khop];
        self
    }

    /// Generates round `round`'s queries against the current graph.
    ///
    /// Pure in `(graph, seed, round)`: query `q` draws only from its own
    /// `(seed, q, round)` RNG stream. An empty graph yields an empty round.
    pub fn generate(&self, graph: &DynGraph, round: u64) -> Vec<Query> {
        if graph.num_live_vertices() == 0 {
            return Vec::new();
        }
        (0..self.queries_per_round as u64)
            .map(|q| self.generate_one(graph, q, round))
            .collect()
    }

    /// Generates the single query with index `q` of round `round`.
    fn generate_one(&self, graph: &DynGraph, q: u64, round: u64) -> Query {
        let mut rng = vertex_rng(self.seed ^ QUERY_SALT, q, round);
        let anchor = self.pick_anchor(graph, &mut rng);
        let [wl, wn, wk] = self.kind_weights;
        let roll = rng.gen_range(0..(wl + wn + wk));
        if roll < wl {
            Query::VertexLookup(anchor)
        } else if roll < wl + wn {
            Query::Neighborhood(anchor)
        } else {
            Query::KHop {
                anchor,
                k: self.khop_k,
            }
        }
    }

    /// Draws one anchor according to the mix. The graph is guaranteed
    /// non-empty by the caller.
    fn pick_anchor(&self, graph: &DynGraph, rng: &mut StdRng) -> VertexId {
        match self.mix {
            QueryMix::Uniform => pick_live(graph, rng),
            QueryMix::DegreeBiased => {
                // Best-of-four by degree: cheap, deterministic, and biased
                // towards hubs without needing a global degree table. Ties
                // keep the earlier draw.
                let mut best = pick_live(graph, rng);
                for _ in 0..3 {
                    let candidate = pick_live(graph, rng);
                    if graph.degree(candidate) > graph.degree(best) {
                        best = candidate;
                    }
                }
                best
            }
            QueryMix::CommunityBiased => {
                // Two draws, keep the minimum: hotspot 0 is ~2x hotter than
                // the median one — a coarse popularity skew.
                let j = rng.gen_range(0..HOTSPOTS).min(rng.gen_range(0..HOTSPOTS));
                let hot = self.hotspot(graph, j);
                // Anchor on the hotspot itself or one of its neighbours, so
                // the round's traffic pounds a few neighbourhoods.
                let neighbors = graph.neighbors(hot);
                let pick = rng.gen_range(0..neighbors.len() + 1);
                if pick == 0 {
                    hot
                } else {
                    let w = neighbors[pick - 1];
                    if graph.is_vertex(w) {
                        w
                    } else {
                        hot
                    }
                }
            }
        }
    }

    /// Hotspot `j`'s current vertex: a fixed per-workload draw (round is
    /// *not* in the key, so hotspots are stable across rounds), resolved to
    /// the nearest live vertex at query time in case it was churned out.
    fn hotspot(&self, graph: &DynGraph, j: u64) -> VertexId {
        let mut rng = vertex_rng(self.seed ^ HOTSPOT_SALT, j, 0);
        pick_live(graph, &mut rng)
    }
}

/// Uniform live vertex: a uniform slot draw, advanced (wrapping) to the
/// next live slot. Deterministic given the RNG stream; the forward scan
/// only engages when the draw lands on a tombstone.
///
/// # Panics
///
/// Panics if the graph has no live vertices (callers guard).
fn pick_live(graph: &DynGraph, rng: &mut StdRng) -> VertexId {
    let slots = graph.num_vertices();
    assert!(
        graph.num_live_vertices() > 0,
        "cannot sample an anchor from an empty graph"
    );
    let mut slot = rng.gen_range(0..slots);
    loop {
        if graph.is_vertex(slot as VertexId) {
            return slot as VertexId;
        }
        slot = (slot + 1) % slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_graph(n: usize) -> DynGraph {
        let mut g = DynGraph::with_vertices(n);
        for v in 1..n as VertexId {
            g.add_edge(0, v);
        }
        g
    }

    #[test]
    fn generation_is_reproducible_and_round_keyed() {
        let g = star_graph(50);
        for mix in [
            QueryMix::Uniform,
            QueryMix::DegreeBiased,
            QueryMix::CommunityBiased,
        ] {
            let w = QueryWorkload::new(mix, 40, 9);
            assert_eq!(w.generate(&g, 3), w.generate(&g, 3), "{mix:?}");
            assert_ne!(w.generate(&g, 3), w.generate(&g, 4), "{mix:?}");
        }
    }

    #[test]
    fn generation_is_independent_of_query_order() {
        // Query 7's draws must not depend on queries 0..6 being generated —
        // the per-(seed, query, round) keying, observed end to end.
        let g = star_graph(30);
        let w = QueryWorkload::new(QueryMix::Uniform, 10, 5);
        let full = w.generate(&g, 2);
        assert_eq!(full[7], w.generate_one(&g, 7, 2));
    }

    #[test]
    fn degree_bias_prefers_the_hub() {
        let g = star_graph(100);
        let w = QueryWorkload::new(QueryMix::DegreeBiased, 200, 1);
        let hub_hits = w.generate(&g, 0).iter().filter(|q| q.anchor() == 0).count();
        // Uniform would hit the hub ~2 times in 200; best-of-four makes it
        // ~8. Anything clearly above uniform proves the bias.
        assert!(hub_hits > 4, "hub hit only {hub_hits}/200 times");
    }

    #[test]
    fn community_bias_concentrates_anchors() {
        let mut g = DynGraph::with_vertices(1000);
        for v in 1..1000u32 {
            g.add_edge(v - 1, v); // a long path: neighbourhoods are tiny
        }
        let w = QueryWorkload::new(QueryMix::CommunityBiased, 300, 3);
        let mut anchors: Vec<VertexId> = w.generate(&g, 0).iter().map(|q| q.anchor()).collect();
        anchors.sort_unstable();
        anchors.dedup();
        // 300 uniform anchors over 1000 vertices would leave ~260 distinct;
        // 16 hotspots with path neighbourhoods leave at most 48.
        assert!(
            anchors.len() <= 3 * HOTSPOTS as usize,
            "{} distinct anchors for a hotspot workload",
            anchors.len()
        );
    }

    #[test]
    fn tombstoned_slots_are_never_anchors() {
        let mut g = star_graph(40);
        for v in (1..40u32).step_by(2) {
            g.remove_vertex(v);
        }
        for mix in [
            QueryMix::Uniform,
            QueryMix::DegreeBiased,
            QueryMix::CommunityBiased,
        ] {
            let w = QueryWorkload::new(mix, 100, 13);
            for q in w.generate(&g, 1) {
                assert!(g.is_vertex(q.anchor()), "{mix:?} anchored a tombstone");
            }
        }
    }

    #[test]
    fn weights_steer_the_kind_mix() {
        let g = star_graph(20);
        let w = QueryWorkload::new(QueryMix::Uniform, 100, 2).weights(0, 1, 0);
        assert!(w
            .generate(&g, 0)
            .iter()
            .all(|q| matches!(q, Query::Neighborhood(_))));
        let w = QueryWorkload::new(QueryMix::Uniform, 100, 2).weights(0, 0, 3);
        assert!(w
            .generate(&g, 0)
            .iter()
            .all(|q| matches!(q, Query::KHop { k: 2, .. })));
    }

    #[test]
    #[should_panic(expected = "at least one query kind")]
    fn zero_weights_are_rejected() {
        let _ = QueryWorkload::new(QueryMix::Uniform, 10, 1).weights(0, 0, 0);
    }

    #[test]
    fn empty_graph_yields_empty_rounds() {
        let g = DynGraph::new();
        let w = QueryWorkload::new(QueryMix::Uniform, 10, 1);
        assert!(w.generate(&g, 0).is_empty());
    }
}
