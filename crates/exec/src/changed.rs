//! Persistent changed-slot tracking for incremental checkpoints.
//!
//! [`ChangedSet`] is the durability-layer sibling of [`ActiveSet`]: the
//! same dense-bitmap discipline — every mutation path that dirties a slot
//! marks it — but accumulated *across* iterations instead of being
//! consumed by the next sweep. A checkpoint writer drains it to learn
//! exactly which slots changed since the previous checkpoint, which is
//! what makes delta-encoded snapshots O(changed-state) instead of
//! O(graph): the encoder never has to diff the full slot space to find
//! the churn.
//!
//! [`ActiveSet`]: crate::ActiveSet

/// A growable bitmap of slots mutated since the last drain.
///
/// Marking is idempotent and O(1); [`ChangedSet::drain_sorted`] yields the
/// marked slots in ascending order and resets the set, which is the
/// checkpoint boundary. Unlike [`ActiveSet`](crate::ActiveSet) there is no
/// per-shard bookkeeping: the set is read once per checkpoint, not swept
/// every iteration.
#[derive(Debug, Clone, Default)]
pub struct ChangedSet {
    words: Vec<u64>,
    len: usize,
    marked: usize,
}

impl ChangedSet {
    /// An empty set covering `len` slots, nothing marked.
    pub fn with_len(len: usize) -> Self {
        ChangedSet {
            words: vec![0; len.div_ceil(64)],
            len,
            marked: 0,
        }
    }

    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots currently marked.
    pub fn num_marked(&self) -> usize {
        self.marked
    }

    /// Whether slot `slot` is marked.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn contains(&self, slot: usize) -> bool {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        self.words[slot / 64] & (1 << (slot % 64)) != 0
    }

    /// Marks slot `slot` as changed. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn mark(&mut self, slot: usize) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let bit = 1u64 << (slot % 64);
        let word = &mut self.words[slot / 64];
        if *word & bit == 0 {
            *word |= bit;
            self.marked += 1;
        }
    }

    /// Marks every covered slot (the conservative reset used when the
    /// previous checkpoint base is unknown, e.g. at construction or
    /// restore).
    pub fn mark_all(&mut self) {
        for (i, word) in self.words.iter_mut().enumerate() {
            let bits = (self.len - i * 64).min(64);
            *word = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        self.marked = self.len;
    }

    /// Grows coverage to at least `len` slots (newly covered slots start
    /// unmarked; callers mark new slots explicitly). Shrinking is a no-op,
    /// mirroring the never-reused slot space.
    pub fn grow_to(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Returns every marked slot in ascending order without resetting the
    /// set — for writers that must keep the marks until the checkpoint is
    /// durably installed (clear with [`ChangedSet::clear`] on success).
    pub fn collect_sorted(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.marked);
        for (i, word) in self.words.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                out.push(i * 64 + tz);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Returns every marked slot in ascending order and resets the set —
    /// the checkpoint boundary.
    pub fn drain_sorted(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.marked);
        for (i, word) in self.words.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                out.push(i * 64 + tz);
                bits &= bits - 1;
            }
            *word = 0;
        }
        self.marked = 0;
        out
    }

    /// Clears every mark without reporting them (used when the current
    /// state *becomes* the new base, e.g. right after a full-snapshot
    /// install or a restore).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.marked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_drain_resets() {
        let mut set = ChangedSet::with_len(130);
        set.mark(0);
        set.mark(129);
        set.mark(64);
        set.mark(64); // idempotent
        assert_eq!(set.num_marked(), 3);
        assert!(set.contains(64));
        assert!(!set.contains(1));
        // A non-draining read leaves the marks in place.
        assert_eq!(set.collect_sorted(), vec![0, 64, 129]);
        assert_eq!(set.num_marked(), 3);
        assert_eq!(set.drain_sorted(), vec![0, 64, 129]);
        assert_eq!(set.num_marked(), 0);
        assert_eq!(set.drain_sorted(), Vec::<usize>::new());
    }

    #[test]
    fn mark_all_covers_exactly_len() {
        let mut set = ChangedSet::with_len(67);
        set.mark_all();
        assert_eq!(set.num_marked(), 67);
        let drained = set.drain_sorted();
        assert_eq!(drained, (0..67).collect::<Vec<_>>());
    }

    #[test]
    fn grow_keeps_marks_and_extends_range() {
        let mut set = ChangedSet::with_len(10);
        set.mark(3);
        set.grow_to(200);
        assert_eq!(set.len(), 200);
        assert!(set.contains(3));
        assert!(!set.contains(199));
        set.mark(199);
        assert_eq!(set.drain_sorted(), vec![3, 199]);
        // Shrinking is a no-op.
        set.grow_to(5);
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn clear_discards_marks() {
        let mut set = ChangedSet::with_len(100);
        set.mark_all();
        set.clear();
        assert_eq!(set.num_marked(), 0);
        assert_eq!(set.drain_sorted(), Vec::<usize>::new());
    }

    #[test]
    fn empty_set_is_harmless() {
        let mut set = ChangedSet::with_len(0);
        assert!(set.is_empty());
        set.mark_all();
        assert_eq!(set.drain_sorted(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_mark_panics() {
        let mut set = ChangedSet::with_len(4);
        set.mark(4);
    }
}
