//! Deterministic RNG streams keyed by `(seed, stream, round)`.
//!
//! Parallel sweeps must not draw from one shared generator: the interleaving
//! of draws would then depend on thread scheduling and the results would
//! differ run to run. Instead every logical unit of work — a shard of the
//! adaptive partitioner's decision sweep, a Pregel worker's superstep pass —
//! derives its own stream from the experiment seed, its stream id and the
//! current round. Same key, same stream, on any number of threads.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes `(seed, stream, round)` into a single 64-bit state.
///
/// FNV-style multiply/add folding — the same derivation `apg-pregel` has
/// always used for its per-worker superstep streams, lifted here so every
/// parallel realisation shares it. Distinct keys give decorrelated streams
/// because [`StdRng::seed_from_u64`] expands the state through SplitMix64.
pub fn stream_state(seed: u64, stream: u64, round: u64) -> u64 {
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95u64;
    h = h.wrapping_mul(0x100000001b3).wrapping_add(stream);
    h = h.wrapping_mul(0x100000001b3).wrapping_add(round);
    h
}

/// A deterministic RNG for one `(seed, stream, round)` key.
///
/// # Example
///
/// ```
/// use apg_exec::stream_rng;
/// use rand::Rng;
///
/// let a: u64 = stream_rng(7, 0, 3).gen();
/// let b: u64 = stream_rng(7, 0, 3).gen();
/// let c: u64 = stream_rng(7, 1, 3).gen();
/// assert_eq!(a, b, "same key reproduces");
/// assert_ne!(a, c, "streams are distinct");
/// ```
pub fn stream_rng(seed: u64, stream: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(stream_state(seed, stream, round))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn keys_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4u64 {
            for stream in 0..4u64 {
                for round in 0..4u64 {
                    let v: u64 = stream_rng(seed, stream, round).gen();
                    assert!(seen.insert(v), "collision at ({seed}, {stream}, {round})");
                }
            }
        }
    }

    #[test]
    fn reproducible_for_fixed_key() {
        let xs: Vec<u64> = (0..10).map(|_| stream_rng(42, 3, 9).gen()).collect();
        assert!(xs.iter().all(|&x| x == xs[0]));
    }
}
