//! Deterministic RNG streams keyed by `(seed, stream, round)`.
//!
//! Parallel sweeps must not draw from one shared generator: the interleaving
//! of draws would then depend on thread scheduling and the results would
//! differ run to run. Instead every logical unit of work — a shard of the
//! adaptive partitioner's decision sweep, a Pregel worker's superstep pass —
//! derives its own stream from the experiment seed, its stream id and the
//! current round. Same key, same stream, on any number of threads.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes `(seed, stream, round)` into a single 64-bit state.
///
/// FNV-style multiply/add folding — the same derivation `apg-pregel` has
/// always used for its per-worker superstep streams, lifted here so every
/// parallel realisation shares it. Distinct keys give decorrelated streams
/// because [`StdRng::seed_from_u64`] expands the state through SplitMix64.
pub fn stream_state(seed: u64, stream: u64, round: u64) -> u64 {
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95u64;
    h = h.wrapping_mul(0x100000001b3).wrapping_add(stream);
    h = h.wrapping_mul(0x100000001b3).wrapping_add(round);
    h
}

/// A deterministic RNG for one `(seed, stream, round)` key.
///
/// # Example
///
/// ```
/// use apg_exec::stream_rng;
/// use rand::Rng;
///
/// let a: u64 = stream_rng(7, 0, 3).gen();
/// let b: u64 = stream_rng(7, 0, 3).gen();
/// let c: u64 = stream_rng(7, 1, 3).gen();
/// assert_eq!(a, b, "same key reproduces");
/// assert_ne!(a, c, "streams are distinct");
/// ```
pub fn stream_rng(seed: u64, stream: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(stream_state(seed, stream, round))
}

/// Mixes `(seed, vertex, round)` into a single 64-bit state, on a salt
/// domain distinct from [`stream_state`] so per-vertex draws can never
/// collide with a per-shard stream of the same key.
///
/// Used by decision sweeps that key randomness by *vertex* instead of by
/// shard: a vertex's draws then depend only on the experiment seed, its own
/// id and the round — never on which other vertices were evaluated, or in
/// what grouping. That independence is what makes skipping provably-inert
/// vertices *exact*: evaluating a subset draws precisely what a full sweep
/// would have drawn for each evaluated vertex.
pub fn vertex_state(seed: u64, vertex: u64, round: u64) -> u64 {
    let mut h = seed ^ 0xa0_76_1d_64_78_bd_64_2fu64;
    h = h.wrapping_mul(0x100000001b3).wrapping_add(vertex);
    h = h.wrapping_mul(0x100000001b3).wrapping_add(round);
    h
}

/// A deterministic RNG for one `(seed, vertex, round)` key.
///
/// Cheap enough to construct per vertex per round (a four-word SplitMix64
/// expansion); see [`vertex_state`] for why sweeps key randomness this way.
///
/// # Example
///
/// ```
/// use apg_exec::vertex_rng;
/// use rand::Rng;
///
/// let a: u64 = vertex_rng(7, 1234, 3).gen();
/// let b: u64 = vertex_rng(7, 1234, 3).gen();
/// let c: u64 = vertex_rng(7, 1235, 3).gen();
/// assert_eq!(a, b, "same key reproduces");
/// assert_ne!(a, c, "vertices draw from distinct streams");
/// ```
pub fn vertex_rng(seed: u64, vertex: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(vertex_state(seed, vertex, round))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn keys_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4u64 {
            for stream in 0..4u64 {
                for round in 0..4u64 {
                    let v: u64 = stream_rng(seed, stream, round).gen();
                    assert!(seen.insert(v), "collision at ({seed}, {stream}, {round})");
                }
            }
        }
    }

    #[test]
    fn reproducible_for_fixed_key() {
        let xs: Vec<u64> = (0..10).map(|_| stream_rng(42, 3, 9).gen()).collect();
        assert!(xs.iter().all(|&x| x == xs[0]));
    }

    #[test]
    fn vertex_keys_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4u64 {
            for vertex in 0..16u64 {
                for round in 0..4u64 {
                    let v: u64 = vertex_rng(seed, vertex, round).gen();
                    assert!(seen.insert(v), "collision at ({seed}, {vertex}, {round})");
                }
            }
        }
    }

    #[test]
    fn vertex_and_stream_domains_are_disjoint() {
        // The salts separate the two derivations: a vertex keyed like a
        // shard must still draw a different stream.
        for key in 0..64u64 {
            assert_ne!(vertex_state(1, key, 2), stream_state(1, key, 2));
            let a: u64 = vertex_rng(1, key, 2).gen();
            let b: u64 = stream_rng(1, key, 2).gen();
            assert_ne!(a, b, "domains collided at key {key}");
        }
    }

    #[test]
    fn vertex_rng_is_independent_of_evaluation_order() {
        // Drawing for vertex 10 is the same whether or not vertices 0..9
        // were evaluated first — the property active-set skipping relies on.
        let direct: u64 = vertex_rng(5, 10, 0).gen();
        let mut after_others = 0u64;
        for v in 0..=10u64 {
            after_others = vertex_rng(5, v, 0).gen();
        }
        assert_eq!(direct, after_others);
    }
}
