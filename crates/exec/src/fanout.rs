//! Scoped-thread fan-out with deterministic, index-ordered results.
//!
//! One primitive, [`map_items`], underlies both parallel realisations in
//! the workspace: the adaptive partitioner's sharded decision sweep
//! (`apg-core`) and the Pregel engine's per-worker superstep execution
//! (`apg-pregel`). Work is dealt to threads round-robin *by index* and
//! outputs are returned *in index order*, so the result is a pure function
//! of the inputs — thread scheduling can reorder execution but never the
//! output.

use crate::shard::ShardPlan;
use std::ops::Range;

/// Number of hardware threads available to this process (at least 1).
///
/// The default for [`AdaptiveConfig::parallelism`] in `apg-core`; falls back
/// to 1 when the platform cannot report a count.
///
/// [`AdaptiveConfig::parallelism`]: https://docs.rs/apg-core
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f(index, item)` to every item, on up to `threads` scoped
/// threads, returning outputs in item order.
///
/// * `threads <= 1` (or fewer than two items) runs inline on the caller's
///   thread — no spawn, identical results.
/// * Otherwise `min(threads, items.len())` scoped threads are spawned and
///   items are dealt round-robin by index; each thread processes its deal in
///   index order and the outputs are reassembled by index afterwards.
///
/// `f` must therefore not rely on cross-item ordering or shared mutable
/// state; determinism of the *combined* result is exactly what this
/// contract buys.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins every thread first).
pub fn map_items<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let workers = threads.min(n);
    let mut deals: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deals[i % workers].push((i, item));
    }
    let f = &f;
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = deals
            .into_iter()
            .map(|deal| {
                scope.spawn(move || {
                    deal.into_iter()
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("fan-out worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// [`map_items`] over a borrowed slice: applies `f(index, &item)` to every
/// item without consuming the backing buffer, so hot loops can keep their
/// work list in a reusable scratch `Vec` across calls.
///
/// Same contract as [`map_items`]: round-robin deal by index, outputs in
/// index order, inline execution for `threads <= 1` or fewer than two
/// items.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins every thread first).
pub fn map_slice<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(n);
    let f = &f;
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("fan-out worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// Runs `f(shard, slot_range)` for every shard of `plan` on up to `threads`
/// threads, returning outputs in shard order.
///
/// The shard decomposition comes from the plan (data-dependent), the thread
/// count from the caller (resource-dependent); results depend only on the
/// former. See the crate docs for the determinism argument.
pub fn map_shards<T, F>(threads: usize, plan: &ShardPlan, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_items(threads, plan.ranges().collect(), |shard, range| {
        f(shard, range)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_are_in_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = map_items(threads, items.clone(), |_, x| x * 3);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = map_items(4, items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let got = map_items(7, (0..1000).collect(), |_, x: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(got.len(), 1000);
    }

    #[test]
    fn map_slice_matches_map_items_and_keeps_the_buffer() {
        let items: Vec<usize> = (0..123).collect();
        let expect = map_items(1, items.clone(), |i, x| i + x);
        for threads in [1, 2, 5, 16] {
            assert_eq!(map_slice(threads, &items, |i, &x| i + x), expect);
        }
        // The slice is untouched and reusable afterwards.
        assert_eq!(items.len(), 123);
        assert!(map_slice(4, &Vec::<u8>::new(), |_, &x| x).is_empty());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = map_items(4, Vec::<u8>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(map_items(4, vec![9u8], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn mutable_items_fan_out() {
        // The engine's shape: a Vec of &mut state, one per worker.
        let mut states = [0u64; 6];
        let items: Vec<&mut u64> = states.iter_mut().collect();
        map_items(3, items, |i, slot| *slot = i as u64 * 10);
        assert_eq!(states, [0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn shards_fan_out_in_order() {
        let plan = ShardPlan::new(25, 4);
        for threads in [1, 2, 4] {
            let sums = map_shards(threads, &plan, |_, range| range.sum::<usize>());
            assert_eq!(sums.len(), plan.num_shards());
            assert_eq!(sums.iter().sum::<usize>(), (0..25).sum::<usize>());
            // First shard is 0+1+2+3.
            assert_eq!(sums[0], 6);
        }
    }

    #[test]
    #[should_panic(expected = "fan-out worker panicked")]
    fn worker_panic_propagates() {
        let _ = map_items(2, vec![0, 1, 2, 3], |_, x: i32| {
            assert!(x != 2, "boom");
            x
        });
    }
}
