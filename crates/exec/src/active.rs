//! Active sets: a dense bitmap over a slot range with per-shard counts.
//!
//! Iterative sweeps spend most of their time re-evaluating slots whose
//! outcome cannot change — after a few rounds of the adaptive heuristic
//! almost every vertex decides *Stay* stably, and dynamic updates only
//! dirty a local neighbourhood. An [`ActiveSet`] tracks which slots still
//! need work: a
//! bitmap answers membership in O(1), an iterator walks the members of any
//! sub-range word-at-a-time, and per-shard counts (aligned with a
//! [`crate::ShardPlan`] of the same shard size) let a fan-out skip whole
//! shards that have nothing to do.
//!
//! Like [`crate::ShardPlan`], the set is pure data: which slots are active
//! depends only on what the consumer marked, never on execution resources,
//! so sweeps that iterate it stay deterministic at every thread count.

use std::ops::Range;

use crate::shard::DEFAULT_SHARD_SIZE;

/// A dense bitmap over `0..len` slots with per-shard active counts.
///
/// # Example
///
/// ```
/// use apg_exec::ActiveSet;
///
/// let mut set = ActiveSet::new(10_000, 4096);
/// set.mark(3);
/// set.mark(4097);
/// assert_eq!(set.num_active(), 2);
/// assert_eq!(set.shard_active(0), 1);
/// assert_eq!(set.shard_active(1), 1);
/// assert_eq!(set.iter_in(0..4096).collect::<Vec<_>>(), vec![3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    words: Vec<u64>,
    len: usize,
    shard_size: usize,
    shard_counts: Vec<usize>,
    active: usize,
}

impl ActiveSet {
    /// An all-inactive set over `0..len`, with shard counts of width
    /// `shard_size` (use the same width as the sweep's [`crate::ShardPlan`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0`.
    pub fn new(len: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        ActiveSet {
            words: vec![0; len.div_ceil(64)],
            len,
            shard_size,
            shard_counts: vec![0; len.div_ceil(shard_size)],
            active: 0,
        }
    }

    /// An all-inactive set with [`DEFAULT_SHARD_SIZE`] shard counts.
    pub fn with_default_shards(len: usize) -> Self {
        Self::new(len, DEFAULT_SHARD_SIZE)
    }

    /// Number of slots covered (`0..len`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shard width the per-shard counts are aligned to.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total active slots.
    pub fn num_active(&self) -> usize {
        self.active
    }

    /// Active slots within shard `shard` (slots
    /// `shard * shard_size ..`), 0 for shards past the end.
    pub fn shard_active(&self, shard: usize) -> usize {
        self.shard_counts.get(shard).copied().unwrap_or(0)
    }

    /// Whether `slot` is active.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        assert!(slot < self.len, "slot {slot} out of range");
        self.words[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Marks `slot` active; returns whether it was inactive before.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    #[inline]
    pub fn mark(&mut self, slot: usize) -> bool {
        assert!(slot < self.len, "slot {slot} out of range");
        let word = &mut self.words[slot / 64];
        let bit = 1u64 << (slot % 64);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.shard_counts[slot / self.shard_size] += 1;
        self.active += 1;
        true
    }

    /// Clears `slot`; returns whether it was active before.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    #[inline]
    pub fn clear(&mut self, slot: usize) -> bool {
        assert!(slot < self.len, "slot {slot} out of range");
        let word = &mut self.words[slot / 64];
        let bit = 1u64 << (slot % 64);
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        self.shard_counts[slot / self.shard_size] -= 1;
        self.active -= 1;
        true
    }

    /// Extends coverage to `0..len`; new slots start inactive. Shrinking is
    /// not supported (slot ranges in this workspace only grow) — a smaller
    /// `len` is a no-op.
    pub fn grow_to(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        self.len = len;
        self.words.resize(len.div_ceil(64), 0);
        self.shard_counts.resize(len.div_ceil(self.shard_size), 0);
    }

    /// Iterates the active slots in `slots`, ascending. Word-level scan:
    /// cost is O(words touched + members yielded), so sweeping a
    /// mostly-inactive range is near-free.
    ///
    /// # Panics
    ///
    /// Panics if `slots.end > len()`.
    pub fn iter_in(&self, slots: Range<usize>) -> ActiveIter<'_> {
        assert!(
            slots.end <= self.len,
            "range end {} out of range",
            slots.end
        );
        let (word, mask) = if slots.start >= slots.end {
            (self.words.len(), 0)
        } else {
            let word = slots.start / 64;
            // Mask off bits below the range start; shift < 64 by
            // construction.
            (word, self.words[word] & (!0u64 << (slots.start % 64)))
        };
        ActiveIter {
            words: &self.words,
            word,
            mask,
            end: slots.end,
        }
    }

    /// Iterates every active slot, ascending.
    pub fn iter(&self) -> ActiveIter<'_> {
        self.iter_in(0..self.len)
    }

    /// Appends `(shard, trimmed slot range)` to `out` for every shard with
    /// at least one active slot, in ascending shard order — the
    /// dirtied-region work list.
    ///
    /// Each range is trimmed to `first_active ..= last_active` within the
    /// shard, so a fan-out scheduling these ranges visits only the slot
    /// region a batch actually touched: untouched shards are dropped
    /// before the fan-out sees them, and a shard dirtied at one edge
    /// contributes a sliver, not its full width. Trimming never changes
    /// *which* active slots a range contains (only inactive ends are cut),
    /// so sweeps driven by this list visit exactly the same vertices, in
    /// the same order, as sweeps over the full shard ranges — the
    /// determinism contract is untouched by construction.
    ///
    /// The ranges land in a caller-owned `Vec` (appended, not returned) so
    /// per-iteration sweeps can reuse one scratch allocation.
    pub fn collect_dirty_shards(&self, out: &mut Vec<(usize, Range<usize>)>) {
        for (shard, &count) in self.shard_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = shard * self.shard_size;
            let end = ((shard + 1) * self.shard_size).min(self.len);
            let first = self
                .first_active_in(start..end)
                .expect("non-zero shard count with no set bit");
            let last = self
                .last_active_in(start..end)
                .expect("non-zero shard count with no set bit");
            out.push((shard, first..last + 1));
        }
    }

    /// First active slot in `slots`, if any (word-level scan).
    fn first_active_in(&self, slots: Range<usize>) -> Option<usize> {
        self.iter_in(slots).next()
    }

    /// Last active slot in `slots`, if any (word-level scan from the top).
    fn last_active_in(&self, slots: Range<usize>) -> Option<usize> {
        if slots.start >= slots.end {
            return None;
        }
        let last_word = (slots.end - 1) / 64;
        let first_word = slots.start / 64;
        for word in (first_word..=last_word).rev() {
            let mut mask = self.words[word];
            if word == last_word {
                let top = (slots.end - 1) % 64;
                // Keep bits at or below the range's last slot; top < 63
                // shift is safe, top == 63 keeps the whole word.
                if top < 63 {
                    mask &= (1u64 << (top + 1)) - 1;
                }
            }
            if word == first_word {
                mask &= !0u64 << (slots.start % 64);
            }
            if mask != 0 {
                return Some(word * 64 + 63 - mask.leading_zeros() as usize);
            }
        }
        None
    }

    /// Audits the internal accounting (bitmap vs counts); used by consumer
    /// invariant checks.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard counts or the total drifted from the bitmap.
    pub fn audit(&self) {
        let mut total = 0usize;
        for (shard, &count) in self.shard_counts.iter().enumerate() {
            let range = shard * self.shard_size..((shard + 1) * self.shard_size).min(self.len);
            let in_bitmap = self.iter_in(range).count();
            assert_eq!(in_bitmap, count, "shard {shard} count drifted");
            total += in_bitmap;
        }
        assert_eq!(total, self.active, "total active count drifted");
    }
}

/// Iterator over the active slots of a sub-range; see
/// [`ActiveSet::iter_in`].
#[derive(Debug, Clone)]
pub struct ActiveIter<'a> {
    words: &'a [u64],
    word: usize,
    mask: u64,
    end: usize,
}

impl Iterator for ActiveIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.mask != 0 {
                let slot = self.word * 64 + self.mask.trailing_zeros() as usize;
                if slot >= self.end {
                    self.mask = 0;
                    self.word = self.words.len();
                    return None;
                }
                self.mask &= self.mask - 1;
                return Some(slot);
            }
            self.word += 1;
            if self.word >= self.words.len() || self.word * 64 >= self.end {
                return None;
            }
            self.mask = self.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_clear_and_counts() {
        let mut set = ActiveSet::new(100, 32);
        assert!(set.mark(0));
        assert!(!set.mark(0), "double mark is a no-op");
        assert!(set.mark(31));
        assert!(set.mark(32));
        assert!(set.mark(99));
        assert_eq!(set.num_active(), 4);
        assert_eq!(set.shard_active(0), 2);
        assert_eq!(set.shard_active(1), 1);
        assert_eq!(set.shard_active(3), 1);
        assert!(set.clear(31));
        assert!(!set.clear(31), "double clear is a no-op");
        assert_eq!(set.shard_active(0), 1);
        assert_eq!(set.num_active(), 3);
        assert!(set.contains(0) && !set.contains(31));
        set.audit();
    }

    #[test]
    fn iteration_matches_naive_scan() {
        let mut set = ActiveSet::new(1000, 64);
        let members = [0usize, 1, 63, 64, 65, 127, 128, 511, 512, 999];
        for &m in &members {
            set.mark(m);
        }
        assert_eq!(set.iter().collect::<Vec<_>>(), members);
        // Sub-ranges cut the word-aligned and unaligned boundaries.
        assert_eq!(set.iter_in(1..64).collect::<Vec<_>>(), vec![1, 63]);
        assert_eq!(set.iter_in(64..128).collect::<Vec<_>>(), vec![64, 65, 127]);
        assert_eq!(
            set.iter_in(65..512).collect::<Vec<_>>(),
            vec![65, 127, 128, 511]
        );
        assert_eq!(set.iter_in(513..999).count(), 0);
        assert_eq!(set.iter_in(7..7).count(), 0, "empty range yields nothing");
    }

    #[test]
    fn grow_extends_with_inactive_slots() {
        let mut set = ActiveSet::new(10, 8);
        set.mark(9);
        set.grow_to(100);
        assert_eq!(set.len(), 100);
        assert_eq!(set.num_active(), 1);
        assert!(!set.contains(50));
        set.mark(99);
        assert_eq!(set.shard_active(12), 1);
        set.grow_to(5);
        assert_eq!(set.len(), 100, "shrinking is a no-op");
        set.audit();
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let set = ActiveSet::new(0, 64);
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        let set = ActiveSet::new(200, 64);
        assert_eq!(set.iter().count(), 0);
        assert_eq!(set.iter_in(0..200).count(), 0);
    }

    #[test]
    fn default_shards_match_shard_plan() {
        use crate::shard::ShardPlan;
        let set = ActiveSet::with_default_shards(10_000);
        let plan = ShardPlan::with_default_size(10_000);
        assert_eq!(set.shard_size(), plan.shard_size());
        // Counts cover exactly the plan's shards.
        assert_eq!(set.shard_active(plan.num_shards()), 0);
    }

    #[test]
    fn dense_membership_round_trips() {
        let mut set = ActiveSet::new(257, 64);
        for slot in 0..257 {
            set.mark(slot);
        }
        assert_eq!(set.num_active(), 257);
        assert_eq!(set.iter().count(), 257);
        for slot in (0..257).step_by(2) {
            set.clear(slot);
        }
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            (1..257).step_by(2).collect::<Vec<_>>()
        );
        set.audit();
    }

    #[test]
    fn dirty_shards_trim_to_touched_region() {
        let mut set = ActiveSet::new(1000, 100);
        set.mark(37);
        set.mark(41);
        set.mark(250);
        set.mark(999);
        let mut out = Vec::new();
        set.collect_dirty_shards(&mut out);
        assert_eq!(out, vec![(0, 37..42), (2, 250..251), (9, 999..1000)]);
        // The trimmed ranges contain exactly the active slots of the full
        // ranges — trimming only cuts inactive ends.
        for (shard, range) in &out {
            let full = shard * 100..((shard + 1) * 100).min(set.len());
            assert_eq!(
                set.iter_in(range.clone()).collect::<Vec<_>>(),
                set.iter_in(full).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn dirty_shards_cover_word_boundaries_and_reuse_scratch() {
        let mut set = ActiveSet::new(300, 128);
        for slot in [0, 63, 64, 127, 128, 191, 256, 299] {
            set.mark(slot);
        }
        let mut out = vec![(99, 0..0)]; // pre-existing entries survive
        set.collect_dirty_shards(&mut out);
        assert_eq!(
            out,
            vec![(99, 0..0), (0, 0..128), (1, 128..192), (2, 256..300)]
        );
        // Clearing a shard's only member drops it from the next collection.
        set.clear(191);
        set.clear(128);
        out.clear();
        set.collect_dirty_shards(&mut out);
        assert_eq!(out, vec![(0, 0..128), (2, 256..300)]);
    }

    #[test]
    fn dirty_shards_empty_set_collects_nothing() {
        let set = ActiveSet::new(500, 64);
        let mut out = Vec::new();
        set.collect_dirty_shards(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_rejects_out_of_range() {
        let set = ActiveSet::new(10, 4);
        let _ = set.contains(10);
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn rejects_zero_shard_size() {
        let _ = ActiveSet::new(10, 0);
    }
}
