//! Shard plans: deterministic decomposition of an index range into
//! fixed-size contiguous chunks.
//!
//! The plan depends only on the *data* (how many slots there are), never on
//! the execution resources (how many threads run it). That separation is
//! what makes the workspace's parallel sweeps reproducible: per-shard RNG
//! streams are keyed by shard index (see [`crate::stream_rng`]), so running
//! the same plan on 1 thread or 16 produces identical results.

use std::ops::Range;

/// Default shard width, in slots.
///
/// Small enough that graphs past ~10k vertices split into several shards
/// (parallelism and load-balancing headroom), large enough that per-shard
/// fixed costs (one `O(k)` decision kernel, one RNG stream) stay noise.
pub const DEFAULT_SHARD_SIZE: usize = 4096;

/// A decomposition of `0..len` into contiguous shards of at most
/// `shard_size` slots each (the last shard may be shorter).
///
/// # Example
///
/// ```
/// use apg_exec::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4);
/// assert_eq!(plan.num_shards(), 3);
/// assert_eq!(plan.range(0), 0..4);
/// assert_eq!(plan.range(2), 8..10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    len: usize,
    shard_size: usize,
}

impl ShardPlan {
    /// Plans shards of at most `shard_size` over `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0`.
    pub fn new(len: usize, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        ShardPlan { len, shard_size }
    }

    /// Plans shards of [`DEFAULT_SHARD_SIZE`] over `0..len`.
    pub fn with_default_size(len: usize) -> Self {
        Self::new(len, DEFAULT_SHARD_SIZE)
    }

    /// Number of slots covered (`0..len`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan covers no slots (and therefore has no shards).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of every shard but possibly the last.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.len.div_ceil(self.shard_size)
    }

    /// Slot range of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.num_shards(), "shard {shard} out of range");
        let start = shard * self.shard_size;
        start..(start + self.shard_size).min(self.len)
    }

    /// All shard ranges, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_shards()).map(|s| self.range(s))
    }
}

/// Flattens per-shard outputs into one vector, preserving shard order.
///
/// Combined with shard-ordered fan-out results (see
/// [`crate::fanout::map_shards`]), this yields the same sequence a
/// single-threaded sweep over `0..len` would produce — the merge half of the
/// workspace's chunk/merge convention.
pub fn merge_in_order<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for part in parts {
        merged.extend(part);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_slot_exactly_once() {
        for len in [0usize, 1, 5, 4096, 4097, 10_000] {
            let plan = ShardPlan::with_default_size(len);
            let mut covered = 0usize;
            let mut next = 0usize;
            for r in plan.ranges() {
                assert_eq!(r.start, next, "gap before shard at {}", r.start);
                assert!(r.start < r.end, "empty shard");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn empty_plan_has_no_shards() {
        let plan = ShardPlan::with_default_size(0);
        assert!(plan.is_empty());
        assert_eq!(plan.num_shards(), 0);
        assert_eq!(plan.ranges().count(), 0);
    }

    #[test]
    fn plan_is_independent_of_thread_count() {
        // The plan is a pure function of (len, shard_size): nothing about
        // execution resources enters the decomposition.
        let a = ShardPlan::new(12_345, 4096);
        let b = ShardPlan::new(12_345, 4096);
        assert_eq!(a, b);
        assert_eq!(
            a.ranges().collect::<Vec<_>>(),
            b.ranges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_preserves_shard_order() {
        let parts = vec![vec![1, 2], vec![], vec![3], vec![4, 5]];
        assert_eq!(merge_in_order(parts), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn rejects_zero_shard_size() {
        let _ = ShardPlan::new(10, 0);
    }
}
