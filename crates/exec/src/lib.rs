//! Sharded parallel execution for the adaptive partitioning workspace.
//!
//! The paper's migration heuristic is decentralised by design: every vertex
//! decides from *stale* neighbour labels, so one iteration's decision sweep
//! is embarrassingly parallel. This crate packages the three ingredients
//! every parallel realisation in the workspace shares, so the logical-level
//! partitioner (`apg-core`) and the distributed engine (`apg-pregel`)
//! cannot drift apart:
//!
//! * [`ShardPlan`] — deterministic decomposition of a slot range into
//!   fixed-size chunks. The plan depends on the data only, never on the
//!   thread count.
//! * [`stream_rng`] — per-`(seed, stream, round)` RNG streams, so random
//!   draws belong to logical work units instead of threads — and
//!   [`vertex_rng`], the finer-grained per-`(seed, vertex, round)`
//!   derivation that makes skipping inert vertices exact.
//! * [`fanout::map_items`] / [`fanout::map_shards`] — scoped-thread fan-out
//!   returning outputs in index order, with a sequential inline path for
//!   `threads <= 1`.
//! * [`ActiveSet`] — a dense bitmap with per-shard counts, so sweeps can
//!   visit only the slots that still need work and skip whole shards that
//!   have none.
//! * [`ChangedSet`] — the checkpoint-grade sibling: a persistent bitmap
//!   of slots mutated since the last drain, the churn record delta
//!   snapshots are encoded from.
//!
//! # The determinism contract
//!
//! A parallel sweep built from these pieces is a pure function of
//! `(data, seed, round)`: the shard plan fixes *what* each unit of work
//! covers, the stream RNG fixes *which* random draws it sees, and the
//! ordered fan-out fixes *how* per-unit outputs recombine. The thread count
//! only chooses how many units run concurrently. Consumers exploit this to
//! guarantee bit-identical results at any parallelism — see the
//! determinism regression test in the workspace root.
//!
//! # Example
//!
//! ```
//! use apg_exec::{fanout, stream_rng, ShardPlan};
//! use rand::Rng;
//!
//! // Count "heads" over 10k slots, 4 threads, reproducibly.
//! let plan = ShardPlan::new(10_000, 1024);
//! let per_shard = fanout::map_shards(4, &plan, |shard, range| {
//!     let mut rng = stream_rng(42, shard as u64, 0);
//!     range.filter(|_| rng.gen_bool(0.5)).count()
//! });
//! let single: Vec<usize> = fanout::map_shards(1, &plan, |shard, range| {
//!     let mut rng = stream_rng(42, shard as u64, 0);
//!     range.filter(|_| rng.gen_bool(0.5)).count()
//! });
//! assert_eq!(per_shard, single);
//! ```

pub mod active;
pub mod changed;
pub mod fanout;
pub mod rng;
pub mod shard;

pub use active::{ActiveIter, ActiveSet};
pub use changed::ChangedSet;
pub use fanout::{available_parallelism, map_items, map_shards, map_slice};
pub use rng::{stream_rng, stream_state, vertex_rng, vertex_state};
pub use shard::{merge_in_order, ShardPlan, DEFAULT_SHARD_SIZE};
