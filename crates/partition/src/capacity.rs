//! Partition capacity constraints (paper §2.2).
//!
//! "As our goal is to obtain a balanced partitioning, a capacity limit must
//! be introduced for every partition" — the paper caps each partition at a
//! factor of the balanced load (110% in the evaluation). The extension the
//! paper lists as future work (§6) — balancing on *edges* rather than
//! vertices, since many algorithms' cost is proportional to edges — is also
//! implemented here and exercised by the ablation benches.

use serde::{Deserialize, Serialize};

use crate::partitioning::PartitionId;

/// What quantity the capacity constraint counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceObjective {
    /// Cap the number of vertices per partition (the paper's §2.2 model).
    Vertices,
    /// Cap the number of edge endpoints (degree mass) per partition — the
    /// paper's §6 future-work extension.
    Edges,
}

/// Per-partition capacity limits `C(i)`.
///
/// # Example
///
/// ```
/// use apg_partition::CapacityModel;
///
/// // 9 partitions over 900 vertices at 110% of balanced load (the paper's
/// // Figure 4 setting): each partition holds at most 110 vertices.
/// let caps = CapacityModel::vertex_balanced(900, 9, 1.10);
/// assert_eq!(caps.capacity(0), 110);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    limits: Vec<usize>,
    objective: BalanceObjective,
}

impl CapacityModel {
    /// Uniform vertex-count capacities: `ceil(n / k) * factor` per partition.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `factor < 1.0` (capacities below the balanced
    /// load cannot hold the graph).
    pub fn vertex_balanced(n: usize, k: PartitionId, factor: f64) -> Self {
        assert!(k > 0, "need at least one partition");
        assert!(factor >= 1.0, "capacity factor below balanced load");
        let per = (((n as f64) / k as f64).ceil() * factor).round() as usize;
        CapacityModel {
            limits: vec![per.max(1); k as usize],
            objective: BalanceObjective::Vertices,
        }
    }

    /// Uniform edge-endpoint capacities: `ceil(2|E| / k) * factor`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `factor < 1.0`.
    pub fn edge_balanced(num_edges: usize, k: PartitionId, factor: f64) -> Self {
        assert!(k > 0, "need at least one partition");
        assert!(factor >= 1.0, "capacity factor below balanced load");
        let per = (((2 * num_edges) as f64 / k as f64).ceil() * factor).round() as usize;
        CapacityModel {
            limits: vec![per.max(1); k as usize],
            objective: BalanceObjective::Edges,
        }
    }

    /// Explicit per-partition limits (e.g. heterogeneous workers, or the
    /// hot-spot-aware scaling hook).
    ///
    /// # Panics
    ///
    /// Panics if `limits` is empty.
    pub fn explicit(limits: Vec<usize>, objective: BalanceObjective) -> Self {
        assert!(!limits.is_empty(), "need at least one partition");
        CapacityModel { limits, objective }
    }

    /// Capacity limit `C(i)`.
    #[inline]
    pub fn capacity(&self, p: PartitionId) -> usize {
        self.limits[p as usize]
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> PartitionId {
        self.limits.len() as PartitionId
    }

    /// The quantity being balanced.
    pub fn objective(&self) -> BalanceObjective {
        self.objective
    }

    /// Remaining capacity `C^t(i) = C(i) - load(i)`, saturating at zero.
    #[inline]
    pub fn remaining(&self, p: PartitionId, load: usize) -> usize {
        self.limits[p as usize].saturating_sub(load)
    }

    /// Scales partition `p`'s capacity by `factor` (hot-spot hook, §6).
    pub fn scale_partition(&mut self, p: PartitionId, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        let cur = self.limits[p as usize];
        self.limits[p as usize] = ((cur as f64) * factor).round().max(1.0) as usize;
    }

    /// Total capacity across partitions.
    pub fn total(&self) -> usize {
        self.limits.iter().sum()
    }
}

impl apg_persist::Encode for BalanceObjective {
    fn encode(&self, enc: &mut apg_persist::Encoder) {
        let tag: u8 = match self {
            BalanceObjective::Vertices => 0,
            BalanceObjective::Edges => 1,
        };
        tag.encode(enc);
    }
}

impl apg_persist::Decode for BalanceObjective {
    fn decode(dec: &mut apg_persist::Decoder<'_>) -> Result<Self, apg_persist::DecodeError> {
        match u8::decode(dec)? {
            0 => Ok(BalanceObjective::Vertices),
            1 => Ok(BalanceObjective::Edges),
            _ => Err(apg_persist::DecodeError::Corrupt(
                "unknown BalanceObjective tag",
            )),
        }
    }
}

impl apg_persist::Encode for CapacityModel {
    /// Binary codec (part of the `apg-persist` durable-state layer):
    /// per-partition limits plus the balance objective.
    fn encode(&self, enc: &mut apg_persist::Encoder) {
        self.limits.encode(enc);
        self.objective.encode(enc);
    }
}

impl apg_persist::Decode for CapacityModel {
    fn decode(dec: &mut apg_persist::Decoder<'_>) -> Result<Self, apg_persist::DecodeError> {
        let limits = Vec::<usize>::decode(dec)?;
        let objective = BalanceObjective::decode(dec)?;
        if limits.is_empty() {
            return Err(apg_persist::DecodeError::Corrupt(
                "capacity model has no partitions",
            ));
        }
        Ok(CapacityModel { limits, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_round_trip() {
        use apg_persist::{Decode, Encode};
        let mut caps = CapacityModel::edge_balanced(120, 3, 1.25);
        caps.scale_partition(1, 2.0);
        assert_eq!(CapacityModel::from_bytes(&caps.to_bytes()).unwrap(), caps);
        // Empty limit tables never decode.
        let mut enc = apg_persist::Encoder::new();
        Vec::<usize>::new().encode(&mut enc);
        BalanceObjective::Vertices.encode(&mut enc);
        assert!(CapacityModel::from_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn paper_figure4_setting() {
        // 9 partitions, capacity 110% of balanced load.
        let caps = CapacityModel::vertex_balanced(64_000, 9, 1.10);
        let balanced = (64_000f64 / 9.0).ceil();
        assert_eq!(caps.capacity(3), (balanced * 1.10).round() as usize);
        assert!(caps.total() >= 64_000);
    }

    #[test]
    fn remaining_saturates() {
        let caps = CapacityModel::vertex_balanced(10, 2, 1.0);
        assert_eq!(caps.remaining(0, 3), 2);
        assert_eq!(caps.remaining(0, 99), 0);
    }

    #[test]
    fn edge_balanced_counts_endpoints() {
        let caps = CapacityModel::edge_balanced(100, 4, 1.0);
        assert_eq!(caps.capacity(0), 50); // 200 endpoints / 4
        assert_eq!(caps.objective(), BalanceObjective::Edges);
    }

    #[test]
    fn scale_partition_adjusts_single_limit() {
        let mut caps = CapacityModel::vertex_balanced(100, 4, 1.0);
        let before = caps.capacity(2);
        caps.scale_partition(2, 1.5);
        assert_eq!(caps.capacity(2), (before as f64 * 1.5).round() as usize);
        assert_eq!(caps.capacity(1), before);
    }

    #[test]
    #[should_panic(expected = "below balanced load")]
    fn rejects_sub_unit_factor() {
        let _ = CapacityModel::vertex_balanced(10, 2, 0.9);
    }

    #[test]
    fn capacity_never_zero() {
        let caps = CapacityModel::vertex_balanced(0, 3, 1.0);
        assert!(caps.capacity(0) >= 1);
    }
}
