//! Partition state, quality metrics and initial partitioning strategies.
//!
//! The paper (§4.2.1) evaluates the adaptive heuristic starting from four
//! initial strategies, all implemented here:
//!
//! * **HSH** — hash partitioning, the default of most large-scale graph
//!   processing systems (`H(v) mod k`).
//! * **RND** — pseudorandom balanced assignment.
//! * **DGR** — stream-based *linear deterministic greedy* (Stanton & Kliot,
//!   KDD 2012).
//! * **MNN** — stream-based *minimum number of neighbours* heuristic
//!   (Prabhakaran et al., USENIX ATC 2012).
//!
//! Quality is measured exactly as in the paper: the **cut ratio** — cut
//! edges normalised by total edges — plus balance metrics.
//!
//! # Example
//!
//! ```
//! use apg_graph::gen;
//! use apg_partition::{cut_ratio, CapacityModel, InitialStrategy, Partitioning};
//!
//! let g = gen::mesh3d(10, 10, 10);
//! let caps = CapacityModel::vertex_balanced(1000, 9, 1.10);
//! let p = InitialStrategy::Hash.assign(&g, &caps, 42);
//! assert!(cut_ratio(&g, &p) > 0.5); // hash partitioning cuts most edges
//! ```

pub mod capacity;
pub mod initial;
pub mod metrics;
pub mod partitioning;

pub use capacity::CapacityModel;
pub use initial::InitialStrategy;
pub use metrics::{
    communication_profile, cut_edges, cut_edges_sharded, cut_ratio, edge_imbalance,
    vertex_imbalance, CommunicationProfile,
};
pub use partitioning::{PartitionId, Partitioning};
