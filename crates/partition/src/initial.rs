//! Initial partitioning strategies (paper §4.2.1).
//!
//! The adaptive heuristic can start from any partitioning; the paper tests
//! four and shows it improves three of them substantially (Figure 4). Note
//! the paper's observation that DGR "depends on full graph knowledge
//! (destinations of already allocated vertices), which poses limits to its
//! scalability" — it is implemented here as a baseline, not a recommendation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use apg_graph::{Graph, VertexId};

use crate::capacity::CapacityModel;
use crate::partitioning::{PartitionId, Partitioning};

/// The four initial partitioning strategies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitialStrategy {
    /// **HSH** — `H(v) mod k`; the common default in large-scale systems.
    Hash,
    /// **RND** — pseudorandom assignment, kept balanced.
    Random,
    /// **DGR** — stream-based linear deterministic greedy (Stanton & Kliot):
    /// place each vertex with the most already-placed neighbours, weighted
    /// by remaining capacity.
    DeterministicGreedy,
    /// **MNN** — stream-based minimum number of neighbours (Prabhakaran et
    /// al.): place each vertex where it has the *fewest* already-placed
    /// neighbours, spreading hubs apart.
    MinNeighbors,
}

impl InitialStrategy {
    /// All four strategies in the paper's plotting order (DGR, HSH, MNN, RND).
    pub const ALL: [InitialStrategy; 4] = [
        InitialStrategy::DeterministicGreedy,
        InitialStrategy::Hash,
        InitialStrategy::Random,
        InitialStrategy::MinNeighbors,
    ];

    /// Short name as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            InitialStrategy::Hash => "HSH",
            InitialStrategy::Random => "RND",
            InitialStrategy::DeterministicGreedy => "DGR",
            InitialStrategy::MinNeighbors => "MNN",
        }
    }

    /// Produces an initial assignment of `graph` into
    /// `caps.num_partitions()` partitions.
    ///
    /// `seed` makes the randomised strategies (RND, and tie-breaks in the
    /// streaming ones) reproducible; `Hash` ignores it.
    pub fn assign<G: Graph>(&self, graph: &G, caps: &CapacityModel, seed: u64) -> Partitioning {
        match self {
            InitialStrategy::Hash => hash_assign(graph, caps.num_partitions()),
            InitialStrategy::Random => random_assign(graph, caps.num_partitions(), seed),
            InitialStrategy::DeterministicGreedy => greedy_stream(graph, caps, seed, true),
            InitialStrategy::MinNeighbors => greedy_stream(graph, caps, seed, false),
        }
    }
}

impl std::fmt::Display for InitialStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// SplitMix64 — cheap, well-mixed integer hash for `H(v) mod k`.
#[inline]
pub fn hash_vertex(v: VertexId) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_assign<G: Graph>(graph: &G, k: PartitionId) -> Partitioning {
    let mut p = Partitioning::new(graph.num_vertices(), k);
    let assignment: Vec<PartitionId> = (0..graph.num_vertices() as VertexId)
        .map(|v| (hash_vertex(v) % k as u64) as PartitionId)
        .collect();
    p.assign_all(&assignment);
    p
}

fn random_assign<G: Graph>(graph: &G, k: PartitionId, seed: u64) -> Partitioning {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.shuffle(&mut rng);
    let mut assignment = vec![0 as PartitionId; n];
    // Dealing a shuffled deck round-robin yields balanced pseudorandom
    // partitions, matching the paper's "still ensuring balanced partitions".
    for (i, &v) in order.iter().enumerate() {
        assignment[v as usize] = (i % k as usize) as PartitionId;
    }
    Partitioning::from_assignment(assignment, k)
}

/// Shared skeleton of the two streaming heuristics: for each vertex in
/// stream order, count already-placed neighbours per partition and score
/// candidates. `maximise` selects DGR (capacity-weighted max) vs MNN (min).
fn greedy_stream<G: Graph>(
    graph: &G,
    caps: &CapacityModel,
    seed: u64,
    maximise: bool,
) -> Partitioning {
    let k = caps.num_partitions();
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<VertexId> = graph.vertices().collect();
    // Stream order is randomised once: both heuristics are defined over a
    // single streaming pass whose order the system does not control.
    order.shuffle(&mut rng);

    let mut assignment = vec![0 as PartitionId; n];
    let mut placed = vec![false; n];
    let mut loads = vec![0usize; k as usize];
    let mut neighbour_counts = vec![0usize; k as usize];

    for &v in &order {
        neighbour_counts.iter_mut().for_each(|c| *c = 0);
        for &w in graph.neighbors(v) {
            if placed[w as usize] {
                neighbour_counts[assignment[w as usize] as usize] += 1;
            }
        }
        let mut best: Option<(f64, usize, PartitionId)> = None;
        for p in 0..k {
            let load = loads[p as usize];
            let cap = caps.capacity(p);
            if load >= cap {
                continue; // full
            }
            let score = if maximise {
                // LDG: neighbours weighted by remaining-capacity fraction.
                neighbour_counts[p as usize] as f64 * (1.0 - load as f64 / cap as f64)
            } else {
                // MNN: fewest neighbours; negate so "bigger is better".
                -(neighbour_counts[p as usize] as f64)
            };
            let candidate = (score, load, p);
            best = Some(match best {
                None => candidate,
                // Higher score wins; ties prefer the lighter partition.
                Some(cur) if score > cur.0 || (score == cur.0 && load < cur.1) => candidate,
                Some(cur) => cur,
            });
        }
        let (_, _, choice) = best.expect("capacities sum to >= |V|, so some partition has room");
        assignment[v as usize] = choice;
        placed[v as usize] = true;
        loads[choice as usize] += 1;
    }
    Partitioning::from_assignment(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{cut_ratio, vertex_imbalance};
    use apg_graph::gen;

    fn caps(n: usize, k: PartitionId) -> CapacityModel {
        CapacityModel::vertex_balanced(n, k, 1.10)
    }

    #[test]
    fn all_strategies_cover_all_vertices() {
        let g = gen::mesh3d(8, 8, 8);
        let c = caps(512, 9);
        for s in InitialStrategy::ALL {
            let p = s.assign(&g, &c, 7);
            assert_eq!(p.num_vertices(), 512, "{s}");
            let total: usize = p.sizes().iter().sum();
            assert_eq!(total, 512, "{s}");
        }
    }

    #[test]
    fn random_is_balanced() {
        let g = gen::mesh3d(8, 8, 8);
        let p = InitialStrategy::Random.assign(&g, &caps(512, 9), 3);
        assert!(vertex_imbalance(&p) < 1.02);
    }

    #[test]
    fn streaming_strategies_respect_capacity() {
        let g = gen::holme_kim(1000, 5, 0.1, 2);
        let c = caps(1000, 9);
        for s in [
            InitialStrategy::DeterministicGreedy,
            InitialStrategy::MinNeighbors,
        ] {
            let p = s.assign(&g, &c, 5);
            for part in 0..9 {
                assert!(
                    p.size(part) <= c.capacity(part),
                    "{s} overflowed partition {part}"
                );
            }
        }
    }

    #[test]
    fn dgr_cuts_fewer_edges_than_hash_on_meshes() {
        // Figure 4's qualitative ordering: DGR produces a far better initial
        // cut than hash on FEM graphs.
        let g = gen::mesh3d(12, 12, 12);
        let c = caps(1728, 9);
        let dgr = cut_ratio(&g, &InitialStrategy::DeterministicGreedy.assign(&g, &c, 1));
        let hsh = cut_ratio(&g, &InitialStrategy::Hash.assign(&g, &c, 1));
        assert!(dgr < 0.6 * hsh, "DGR {dgr} vs HSH {hsh}");
    }

    #[test]
    fn mnn_scatters_like_random() {
        // MNN deliberately spreads neighbours, so its initial cut is high —
        // in the paper it starts roughly as bad as RND/HSH.
        let g = gen::mesh3d(10, 10, 10);
        let c = caps(1000, 9);
        let mnn = cut_ratio(&g, &InitialStrategy::MinNeighbors.assign(&g, &c, 1));
        assert!(mnn > 0.7, "MNN cut ratio unexpectedly low: {mnn}");
    }

    #[test]
    fn hash_is_deterministic_and_seed_independent() {
        let g = gen::mesh3d(6, 6, 6);
        let c = caps(216, 4);
        let a = InitialStrategy::Hash.assign(&g, &c, 1);
        let b = InitialStrategy::Hash.assign(&g, &c, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = InitialStrategy::ALL.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"DGR"));
        assert!(labels.contains(&"HSH"));
        assert!(labels.contains(&"MNN"));
        assert!(labels.contains(&"RND"));
    }

    #[test]
    fn hash_vertex_mixes() {
        // Consecutive ids land in different buckets reasonably often.
        let k = 9u64;
        let mut same = 0;
        for v in 0..1000u32 {
            if hash_vertex(v) % k == hash_vertex(v + 1) % k {
                same += 1;
            }
        }
        assert!(same < 250, "poor mixing: {same}/1000 collisions");
    }
}
