//! The k-way partition assignment.

use serde::{Deserialize, Serialize};

use apg_graph::{Graph, VertexId};

/// Identifier of a partition, `0..k`.
///
/// `u16` supports up to 65 535 partitions — far beyond the paper's scale
/// (9–63) — while keeping the per-vertex assignment array dense.
pub type PartitionId = u16;

/// A `k`-way assignment of vertices to partitions.
///
/// Maintains the per-partition vertex counts incrementally so size lookups —
/// the input to the paper's capacity quotas — are O(1).
///
/// # Example
///
/// ```
/// use apg_partition::Partitioning;
///
/// let mut p = Partitioning::new(4, 3);
/// p.assign_all(&[0, 1, 2, 0]);
/// assert_eq!(p.size(0), 2);
/// p.move_vertex(3, 1);
/// assert_eq!(p.size(0), 1);
/// assert_eq!(p.size(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    assignment: Vec<PartitionId>,
    sizes: Vec<usize>,
}

impl Partitioning {
    /// Creates an assignment of `n` vertices, all initially in partition 0.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: PartitionId) -> Self {
        assert!(k > 0, "need at least one partition");
        let mut sizes = vec![0usize; k as usize];
        sizes[0] = n;
        Partitioning {
            assignment: vec![0; n],
            sizes,
        }
    }

    /// Builds a partitioning from an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any entry is `>= k`.
    pub fn from_assignment(assignment: Vec<PartitionId>, k: PartitionId) -> Self {
        assert!(k > 0, "need at least one partition");
        let mut sizes = vec![0usize; k as usize];
        for &p in &assignment {
            assert!(p < k, "partition id {p} out of range for k={k}");
            sizes[p as usize] += 1;
        }
        Partitioning { assignment, sizes }
    }

    /// Number of partitions `k`.
    pub fn num_partitions(&self) -> PartitionId {
        self.sizes.len() as PartitionId
    }

    /// Number of vertex slots tracked.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Partition of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v as usize]
    }

    /// Current size of partition `p`.
    #[inline]
    pub fn size(&self, p: PartitionId) -> usize {
        self.sizes[p as usize]
    }

    /// All partition sizes, indexed by partition id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Reassigns vertex `v` to partition `to`, updating counts.
    ///
    /// Returns the previous partition.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `to` is out of range.
    pub fn move_vertex(&mut self, v: VertexId, to: PartitionId) -> PartitionId {
        assert!(
            (to as usize) < self.sizes.len(),
            "partition {to} out of range"
        );
        let from = self.assignment[v as usize];
        if from != to {
            self.sizes[from as usize] -= 1;
            self.sizes[to as usize] += 1;
            self.assignment[v as usize] = to;
        }
        from
    }

    /// Overwrites the whole assignment.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any entry is out of range.
    pub fn assign_all(&mut self, assignment: &[PartitionId]) {
        assert_eq!(assignment.len(), self.assignment.len(), "length mismatch");
        let k = self.num_partitions();
        self.sizes.iter_mut().for_each(|s| *s = 0);
        for (slot, &p) in self.assignment.iter_mut().zip(assignment) {
            assert!(p < k, "partition id {p} out of range for k={k}");
            *slot = p;
            self.sizes[p as usize] += 1;
        }
    }

    /// Grows the assignment to cover `n` vertices, placing new slots in the
    /// given partition. Used when dynamic graphs add vertices.
    pub fn grow_to(&mut self, n: usize, p: PartitionId) {
        assert!(
            (p as usize) < self.sizes.len(),
            "partition {p} out of range"
        );
        if n > self.assignment.len() {
            self.sizes[p as usize] += n - self.assignment.len();
            self.assignment.resize(n, p);
        }
    }

    /// Removes a vertex from the size accounting (its slot keeps the stale
    /// label; callers must treat tombstoned vertices as unassigned).
    pub fn forget_vertex(&mut self, v: VertexId) {
        let p = self.assignment[v as usize];
        self.sizes[p as usize] -= 1;
    }

    /// Raw assignment slice (one entry per vertex slot).
    pub fn as_slice(&self) -> &[PartitionId] {
        &self.assignment
    }

    /// Recomputes sizes counting only live vertices of `graph`.
    ///
    /// After vertex removals the incremental sizes are maintained through
    /// [`Partitioning::forget_vertex`]; this is the O(n) consistency check /
    /// repair used by tests and the engine's invariant audits.
    pub fn recount_live<G: Graph>(&mut self, graph: &G) {
        self.sizes.iter_mut().for_each(|s| *s = 0);
        for v in graph.vertices() {
            self.sizes[self.assignment[v as usize] as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_puts_everything_in_partition_zero() {
        let p = Partitioning::new(5, 3);
        assert_eq!(p.size(0), 5);
        assert_eq!(p.size(1), 0);
        assert_eq!(p.num_partitions(), 3);
    }

    #[test]
    fn move_vertex_updates_sizes() {
        let mut p = Partitioning::new(4, 2);
        let from = p.move_vertex(2, 1);
        assert_eq!(from, 0);
        assert_eq!(p.size(0), 3);
        assert_eq!(p.size(1), 1);
        // Moving to the same partition is a no-op.
        assert_eq!(p.move_vertex(2, 1), 1);
        assert_eq!(p.size(1), 1);
    }

    #[test]
    fn from_assignment_counts() {
        let p = Partitioning::from_assignment(vec![0, 1, 1, 2], 3);
        assert_eq!(p.sizes(), &[1, 2, 1]);
        assert_eq!(p.partition_of(2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_assignment_validates() {
        let _ = Partitioning::from_assignment(vec![0, 5], 3);
    }

    #[test]
    fn grow_and_forget() {
        let mut p = Partitioning::new(2, 2);
        p.grow_to(4, 1);
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.size(1), 2);
        p.forget_vertex(3);
        assert_eq!(p.size(1), 1);
    }

    #[test]
    fn recount_live_skips_tombstones() {
        use apg_graph::DynGraph;
        let mut g = DynGraph::with_vertices(4);
        g.remove_vertex(1);
        let mut p = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        p.recount_live(&g);
        assert_eq!(p.sizes(), &[1, 2]);
    }
}

impl Partitioning {
    /// Serialises the assignment as plain text: a header line `k n`, then
    /// one partition id per line. Stable across versions; intended for
    /// persisting partition maps between runs (the paper's motivation for
    /// adaptation is precisely avoiding recomputing these from scratch).
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_text<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "{} {}", self.num_partitions(), self.num_vertices())?;
        for &p in &self.assignment {
            writeln!(writer, "{p}")?;
        }
        Ok(())
    }

    /// Reads an assignment written by [`Partitioning::write_text`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed headers, short files, or
    /// out-of-range partition ids.
    pub fn read_text<R: std::io::Read>(reader: R) -> std::io::Result<Partitioning> {
        use std::io::{BufRead, BufReader, Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
        let mut lines = BufReader::new(reader).lines();
        let header = lines.next().ok_or_else(|| bad("empty partition file"))??;
        let mut parts = header.split_whitespace();
        let k: PartitionId = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("malformed header"))?;
        let n: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("malformed header"))?;
        if k == 0 {
            return Err(bad("k must be positive"));
        }
        let mut assignment = Vec::with_capacity(n);
        for line in lines.take(n) {
            let p: PartitionId = line?
                .trim()
                .parse()
                .map_err(|_| bad("malformed partition id"))?;
            if p >= k {
                return Err(bad("partition id out of range"));
            }
            assignment.push(p);
        }
        if assignment.len() != n {
            return Err(bad("truncated partition file"));
        }
        Ok(Partitioning::from_assignment(assignment, k))
    }
}

impl apg_persist::Encode for Partitioning {
    /// Binary codec (part of the `apg-persist` durable-state layer): `k`,
    /// the per-slot assignment, and the **live** sizes. Sizes are encoded
    /// rather than recounted because tombstoned slots keep their stale
    /// label — the assignment alone over-counts partitions that lost
    /// vertices.
    fn encode(&self, enc: &mut apg_persist::Encoder) {
        self.num_partitions().encode(enc);
        self.assignment.encode(enc);
        self.sizes.encode(enc);
    }
}

impl Partitioning {
    /// Builds a partitioning from raw labels and *live* sizes, running the
    /// same structural validation as the binary decoder — the constructor
    /// for callers reconstituting state from untrusted bytes (the decoder
    /// itself, and the incremental-checkpoint apply path in `apg-core`).
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant: `k == 0`, a size
    /// table whose length differs from `k`, a label out of range, or a
    /// live size exceeding the number of slots labelled with the
    /// partition (tombstones shrink live sizes, never grow them).
    pub fn from_labels_and_live_sizes(
        assignment: Vec<PartitionId>,
        sizes: Vec<usize>,
    ) -> Result<Self, &'static str> {
        let k = sizes.len();
        if k == 0 {
            return Err("partitioning has k == 0");
        }
        if k > PartitionId::MAX as usize {
            return Err("size table length exceeds the partition-id range");
        }
        let mut label_counts = vec![0usize; k];
        for &p in &assignment {
            if p as usize >= k {
                return Err("assignment entry out of range");
            }
            label_counts[p as usize] += 1;
        }
        // Live sizes can only be what the labels admit (tombstones shrink
        // them, never grow them).
        for (&size, &labelled) in sizes.iter().zip(&label_counts) {
            if size > labelled {
                return Err("live size exceeds the slots labelled with the partition");
            }
        }
        Ok(Partitioning { assignment, sizes })
    }
}

impl apg_persist::Decode for Partitioning {
    fn decode(dec: &mut apg_persist::Decoder<'_>) -> Result<Self, apg_persist::DecodeError> {
        use apg_persist::DecodeError;
        let k = PartitionId::decode(dec)?;
        if k == 0 {
            return Err(DecodeError::Corrupt("partitioning has k == 0"));
        }
        let assignment = Vec::<PartitionId>::decode(dec)?;
        let sizes = Vec::<usize>::decode(dec)?;
        if sizes.len() != k as usize {
            return Err(DecodeError::Corrupt("size table length differs from k"));
        }
        Partitioning::from_labels_and_live_sizes(assignment, sizes).map_err(DecodeError::Corrupt)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn binary_round_trip_preserves_live_sizes() {
        use apg_persist::{Decode, Encode};
        let mut p = Partitioning::from_assignment(vec![0, 2, 1, 2, 0], 3);
        p.forget_vertex(1); // tombstone keeps its stale label
        let back = Partitioning::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.sizes(), &[2, 1, 1]);
        assert_eq!(back.partition_of(1), 2, "stale label survives the trip");
    }

    #[test]
    fn binary_decode_rejects_inconsistencies() {
        use apg_persist::{Decode, DecodeError, Encode, Encoder};
        // Out-of-range assignment entry.
        let mut enc = Encoder::new();
        2u16.encode(&mut enc);
        vec![0u16, 5].encode(&mut enc);
        vec![1usize, 1].encode(&mut enc);
        assert!(matches!(
            Partitioning::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("assignment entry out of range")
        ));
        // Size table claiming more live vertices than labels exist.
        let mut enc = Encoder::new();
        2u16.encode(&mut enc);
        vec![0u16, 0].encode(&mut enc);
        vec![2usize, 1].encode(&mut enc);
        assert!(matches!(
            Partitioning::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
        // k == 0.
        let mut enc = Encoder::new();
        0u16.encode(&mut enc);
        Vec::<u16>::new().encode(&mut enc);
        Vec::<usize>::new().encode(&mut enc);
        assert!(matches!(
            Partitioning::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("partitioning has k == 0")
        ));
    }

    #[test]
    fn text_round_trip() {
        let p = Partitioning::from_assignment(vec![0, 2, 1, 2, 0], 3);
        let mut buf = Vec::new();
        p.write_text(&mut buf).unwrap();
        let q = Partitioning::read_text(&buf[..]).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let err = Partitioning::read_text("2 2\n0\n5\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        assert!(Partitioning::read_text("3 5\n0\n1\n".as_bytes()).is_err());
        assert!(Partitioning::read_text("x y\n".as_bytes()).is_err());
        assert!(Partitioning::read_text("".as_bytes()).is_err());
        assert!(Partitioning::read_text("0 0\n".as_bytes()).is_err());
    }
}
