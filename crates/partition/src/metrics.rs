//! Partition quality metrics.
//!
//! The paper's gold standard (§4.2) is the **cut ratio**: cut edges
//! normalised by total edges. Balance metrics quantify the "node
//! densification" effect the capacity quotas exist to prevent.

use apg_graph::Graph;

use crate::partitioning::Partitioning;

/// Number of edges whose endpoints lie in different partitions.
///
/// Counts each undirected edge once. Tombstoned vertices contribute nothing
/// (their adjacency is empty in a [`apg_graph::DynGraph`]).
pub fn cut_edges<G: Graph>(graph: &G, partitioning: &Partitioning) -> usize {
    let mut cut = 0usize;
    for v in graph.vertices() {
        let pv = partitioning.partition_of(v);
        for &w in graph.neighbors(v) {
            if w > v && partitioning.partition_of(w) != pv {
                cut += 1;
            }
        }
    }
    cut
}

/// [`cut_edges`] on up to `threads` fan-out threads (`apg-exec`).
///
/// The slot range is cut into fixed-size shards; each shard counts the cut
/// edges whose *lower* endpoint falls in its range against the frozen
/// graph + assignment, and the per-shard counts are summed in shard order.
/// Every edge has exactly one lower endpoint, so the total is exactly what
/// the serial walk counts — the result is a pure function of the data, the
/// thread count only trades wall-clock. Tombstoned slots have empty
/// adjacency and contribute nothing, exactly as in [`cut_edges`].
///
/// This is the recount behind partitioner construction and
/// checkpoint-resume on multi-million-vertex graphs, where a serial
/// `O(|E|)` walk dominates start-up cost.
pub fn cut_edges_sharded<G: Graph + Sync>(
    graph: &G,
    partitioning: &Partitioning,
    threads: usize,
) -> usize {
    let plan = apg_exec::ShardPlan::with_default_size(graph.num_vertices());
    apg_exec::fanout::map_shards(threads, &plan, |_, slots| {
        let mut cut = 0usize;
        for slot in slots {
            let v = slot as apg_graph::VertexId;
            let pv = partitioning.partition_of(v);
            for &w in graph.neighbors(v) {
                if w > v && partitioning.partition_of(w) != pv {
                    cut += 1;
                }
            }
        }
        cut
    })
    .into_iter()
    .sum()
}

/// Cut edges normalised by total edges — the paper's quality measure.
///
/// Returns 0 for edgeless graphs.
pub fn cut_ratio<G: Graph>(graph: &G, partitioning: &Partitioning) -> f64 {
    let e = graph.num_edges();
    if e == 0 {
        0.0
    } else {
        cut_edges(graph, partitioning) as f64 / e as f64
    }
}

/// Vertex imbalance: `max_i |P(i)| / (|V| / k)`.
///
/// 1.0 is perfectly balanced; the paper's capacity setting bounds this at
/// the capacity factor (1.10 in the evaluation).
pub fn vertex_imbalance(partitioning: &Partitioning) -> f64 {
    let total: usize = partitioning.sizes().iter().sum();
    if total == 0 {
        return 1.0;
    }
    let k = partitioning.num_partitions() as f64;
    let max = *partitioning.sizes().iter().max().expect("k >= 1") as f64;
    max / (total as f64 / k)
}

/// Edge-endpoint imbalance: `max_i deg(P(i)) / (2|E| / k)`.
///
/// The quantity the paper's §6 future-work extension balances.
pub fn edge_imbalance<G: Graph>(graph: &G, partitioning: &Partitioning) -> f64 {
    let k = partitioning.num_partitions() as usize;
    let mut degree_mass = vec![0usize; k];
    for v in graph.vertices() {
        degree_mass[partitioning.partition_of(v) as usize] += graph.degree(v);
    }
    let total: usize = degree_mass.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *degree_mass.iter().max().expect("k >= 1") as f64;
    max / (total as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::CsrGraph;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn cut_edges_counts_cross_partition_edges_once() {
        let g = path4();
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(cut_edges(&g, &p), 1);
        assert!((cut_ratio(&g, &p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_in_one_partition_cuts_nothing() {
        let g = path4();
        let p = Partitioning::new(4, 2);
        assert_eq!(cut_edges(&g, &p), 0);
        assert_eq!(cut_ratio(&g, &p), 0.0);
    }

    #[test]
    fn alternating_assignment_cuts_everything() {
        let g = path4();
        let p = Partitioning::from_assignment(vec![0, 1, 0, 1], 2);
        assert_eq!(cut_edges(&g, &p), 3);
        assert_eq!(cut_ratio(&g, &p), 1.0);
    }

    #[test]
    fn cut_ratio_of_edgeless_graph_is_zero() {
        let g = CsrGraph::from_edges(3, &[]);
        let p = Partitioning::new(3, 2);
        assert_eq!(cut_ratio(&g, &p), 0.0);
    }

    #[test]
    fn vertex_imbalance_detects_densification() {
        let balanced = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        assert!((vertex_imbalance(&balanced) - 1.0).abs() < 1e-12);
        let skewed = Partitioning::from_assignment(vec![0, 0, 0, 1], 2);
        assert!((vertex_imbalance(&skewed) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edge_imbalance_weights_by_degree() {
        // Star centred at 0: all degree mass concentrates with the centre.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let p = Partitioning::from_assignment(vec![0, 1, 1, 1], 2);
        // degree mass: p0 = 3, p1 = 3 -> balanced.
        assert!((edge_imbalance(&g, &p) - 1.0).abs() < 1e-12);
        let p2 = Partitioning::from_assignment(vec![0, 0, 0, 1], 2);
        // p0 = 3 + 1 + 1 = 5, p1 = 1 -> 5 / 3.
        assert!((edge_imbalance(&g, &p2) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tombstones_do_not_affect_cut() {
        use apg_graph::DynGraph;
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let p = Partitioning::from_assignment(vec![0, 1, 0, 1], 2);
        assert_eq!(cut_edges(&g, &p), 2);
        g.remove_vertex(3);
        assert_eq!(cut_edges(&g, &p), 1);
    }

    #[test]
    fn sharded_recount_matches_serial_at_any_thread_count() {
        use apg_graph::DynGraph;
        // Span several shards so the fan-out genuinely decomposes, and
        // leave tombstones behind so dead slots are exercised too.
        let n = 3 * apg_exec::DEFAULT_SHARD_SIZE + 17;
        let mut g = DynGraph::with_vertices(n);
        for v in 0..n as u32 {
            g.add_edge(v, (v.wrapping_mul(2654435761) % n as u32).max(1));
            g.add_edge(v, ((v as usize + 1) % n) as u32);
        }
        for v in (0..n as u32).step_by(97) {
            g.remove_vertex(v);
        }
        let assignment: Vec<u16> = (0..n).map(|v| (v % 5) as u16).collect();
        let p = Partitioning::from_assignment(assignment, 5);
        let serial = cut_edges(&g, &p);
        assert!(serial > 0);
        for threads in [1, 2, 8] {
            assert_eq!(cut_edges_sharded(&g, &p, threads), serial, "{threads}");
        }
    }

    #[test]
    fn sharded_recount_of_empty_graph_is_zero() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = Partitioning::new(0, 2);
        assert_eq!(cut_edges_sharded(&g, &p, 4), 0);
    }
}

/// Per-partition communication summary for a BSP superstep in which every
/// vertex messages all neighbours once — the load model behind the paper's
/// time-per-iteration plots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunicationProfile {
    /// Messages each partition sends to other partitions.
    pub remote_out: Vec<usize>,
    /// Messages each partition delivers internally.
    pub local: Vec<usize>,
    /// Vertices with at least one neighbour in another partition.
    pub boundary_vertices: Vec<usize>,
}

impl CommunicationProfile {
    /// Total remote messages (both directions of every cut edge).
    pub fn total_remote(&self) -> usize {
        self.remote_out.iter().sum()
    }

    /// Max-to-mean skew of outbound remote traffic — the quantity that
    /// gates the BSP barrier when messaging dominates.
    pub fn remote_skew(&self) -> f64 {
        let total = self.total_remote();
        if total == 0 {
            return 1.0;
        }
        let k = self.remote_out.len() as f64;
        let max = *self.remote_out.iter().max().expect("k >= 1") as f64;
        max / (total as f64 / k)
    }
}

/// Computes the [`CommunicationProfile`] of a partitioning.
pub fn communication_profile<G: Graph>(
    graph: &G,
    partitioning: &Partitioning,
) -> CommunicationProfile {
    let k = partitioning.num_partitions() as usize;
    let mut remote_out = vec![0usize; k];
    let mut local = vec![0usize; k];
    let mut boundary = vec![0usize; k];
    for v in graph.vertices() {
        let pv = partitioning.partition_of(v) as usize;
        let mut is_boundary = false;
        for &w in graph.neighbors(v) {
            if partitioning.partition_of(w) as usize == pv {
                local[pv] += 1;
            } else {
                remote_out[pv] += 1;
                is_boundary = true;
            }
        }
        if is_boundary {
            boundary[pv] += 1;
        }
    }
    CommunicationProfile {
        remote_out,
        local,
        boundary_vertices: boundary,
    }
}

#[cfg(test)]
mod comm_tests {
    use super::*;
    use apg_graph::CsrGraph;

    #[test]
    fn profile_of_split_path() {
        // 0-1-2-3 split in the middle.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partitioning::from_assignment(vec![0, 0, 1, 1], 2);
        let prof = communication_profile(&g, &p);
        assert_eq!(prof.total_remote(), 2); // edge 1-2, both directions
        assert_eq!(prof.local, vec![2, 2]);
        assert_eq!(prof.boundary_vertices, vec![1, 1]);
        assert!((prof.remote_skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_detects_hub_concentration() {
        // Star centre in partition 0 alone: p0 sends 4 remote, others few.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = Partitioning::from_assignment(vec![0, 1, 1, 1, 1], 2);
        let prof = communication_profile(&g, &p);
        assert_eq!(prof.remote_out, vec![4, 4]);
        // Balanced here; now isolate a leaf to partition 0 with the hub.
        let p2 = Partitioning::from_assignment(vec![0, 0, 1, 1, 1], 2);
        let prof2 = communication_profile(&g, &p2);
        assert_eq!(prof2.remote_out[0], 3);
        assert_eq!(prof2.remote_out[1], 3);
        assert_eq!(prof2.local[0], 2);
    }

    #[test]
    fn empty_graph_profile() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = Partitioning::new(0, 3);
        let prof = communication_profile(&g, &p);
        assert_eq!(prof.total_remote(), 0);
        assert_eq!(prof.remote_skew(), 1.0);
    }
}
