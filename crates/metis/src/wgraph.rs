//! Weighted graph representation used by the multilevel pipeline.

use apg_graph::Graph;

/// A vertex- and edge-weighted undirected graph in CSR form.
///
/// Coarsening accumulates contracted vertices into `vwgt` and merged
/// parallel edges into `adjwgt`, so cuts and balance computed on a coarse
/// graph equal those of the fine graph under the projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WGraph {
    /// CSR offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Neighbour ids (compact, `0..n`).
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u64>,
    /// Vertex weights, length `n`.
    pub vwgt: Vec<u64>,
}

impl WGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vwgt.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vwgt.is_empty()
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Neighbour slice of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Edge-weight slice of `v`, parallel to [`WGraph::neighbors`].
    pub fn weights(&self, v: usize) -> &[u64] {
        &self.adjwgt[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Builds a unit-weight `WGraph` over the live vertices of `graph`,
    /// compacting ids so tombstones disappear.
    pub fn from_graph<G: Graph>(graph: &G) -> Self {
        let mut compact = vec![u32::MAX; graph.num_vertices()];
        for (i, v) in graph.vertices().enumerate() {
            compact[v as usize] = i as u32;
        }
        let n = graph.num_live_vertices();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        xadj.push(0);
        for v in graph.vertices() {
            for &w in graph.neighbors(v) {
                adjncy.push(compact[w as usize]);
            }
            xadj.push(adjncy.len());
        }
        let adjwgt = vec![1u64; adjncy.len()];
        WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: vec![1u64; n],
        }
    }

    /// Extracts the subgraph induced by the vertices with `side[v] == keep`,
    /// returning the subgraph and the map from new compact id to old id.
    pub fn subgraph(&self, side: &[bool], keep: bool) -> (WGraph, Vec<u32>) {
        let mut old_of_new = Vec::new();
        let mut new_of_old = vec![u32::MAX; self.len()];
        for v in 0..self.len() {
            if side[v] == keep {
                new_of_old[v] = old_of_new.len() as u32;
                old_of_new.push(v as u32);
            }
        }
        let mut xadj = Vec::with_capacity(old_of_new.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(old_of_new.len());
        xadj.push(0);
        for &old in &old_of_new {
            let old = old as usize;
            for (idx, &w) in self.neighbors(old).iter().enumerate() {
                let mapped = new_of_old[w as usize];
                if mapped != u32::MAX {
                    adjncy.push(mapped);
                    adjwgt.push(self.weights(old)[idx]);
                }
            }
            xadj.push(adjncy.len());
            vwgt.push(self.vwgt[old]);
        }
        (
            WGraph {
                xadj,
                adjncy,
                adjwgt,
                vwgt,
            },
            old_of_new,
        )
    }

    /// Sum of edge weights crossing the bisection `side`.
    pub fn cut_weight(&self, side: &[bool]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.len() {
            for (idx, &w) in self.neighbors(v).iter().enumerate() {
                if (w as usize) > v && side[v] != side[w as usize] {
                    cut += self.weights(v)[idx];
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::CsrGraph;

    fn wg() -> WGraph {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        WGraph::from_graph(&g)
    }

    #[test]
    fn from_graph_unit_weights() {
        let g = wg();
        assert_eq!(g.len(), 4);
        assert_eq!(g.total_weight(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.weights(0), &[1, 1]);
    }

    #[test]
    fn compacts_tombstones() {
        use apg_graph::DynGraph;
        let mut d = DynGraph::with_vertices(4);
        d.add_edge(0, 1);
        d.add_edge(1, 3);
        d.remove_vertex(2);
        let g = WGraph::from_graph(&d);
        assert_eq!(g.len(), 3);
        // Old vertex 3 is now compact id 2.
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn cut_weight_of_square() {
        let g = wg();
        // Opposite corners together: both diagonals cut -> 4 edges cut.
        assert_eq!(g.cut_weight(&[true, false, true, false]), 4);
        // Adjacent pairs: 2 edges cut.
        assert_eq!(g.cut_weight(&[true, true, false, false]), 2);
    }

    #[test]
    fn subgraph_extraction() {
        let g = wg();
        let (sub, map) = g.subgraph(&[true, true, false, false], true);
        assert_eq!(sub.len(), 2);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.neighbors(0), &[1]); // edge 0-1 survives; 0-3 dropped
    }
}
