//! Initial bisection of the coarsest graph by greedy graph growing.

use rand::rngs::StdRng;
use rand::Rng;

use crate::wgraph::WGraph;

/// Bisects `graph` so that the `true` side holds close to `frac` of the
/// total vertex weight.
///
/// Runs greedy graph growing (GGG) from several random seeds and keeps the
/// lowest-cut result: grow a region from a seed vertex, repeatedly absorbing
/// the frontier vertex with the highest gain (external minus internal edge
/// weight) until the target weight is reached.
pub fn greedy_bisect(graph: &WGraph, frac: f64, tries: usize, rng: &mut StdRng) -> Vec<bool> {
    assert!(!graph.is_empty(), "cannot bisect an empty graph");
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let total = graph.total_weight();
    let target = (total as f64 * frac).round() as u64;

    let mut best: Option<(u64, Vec<bool>)> = None;
    for _ in 0..tries.max(1) {
        let side = grow_once(graph, target, rng);
        let cut = graph.cut_weight(&side);
        if best.as_ref().is_none_or(|(c, _)| cut < *c) {
            best = Some((cut, side));
        }
    }
    best.expect("at least one try").1
}

fn grow_once(graph: &WGraph, target: u64, rng: &mut StdRng) -> Vec<bool> {
    let n = graph.len();
    let mut side = vec![false; n];
    if target == 0 {
        return side;
    }
    let mut grown = 0u64;
    let mut in_region = vec![false; n];
    // (gain, vertex) max-heap with lazy revalidation.
    let mut heap: std::collections::BinaryHeap<(i64, u32)> = std::collections::BinaryHeap::new();

    let gain_of = |v: usize, in_region: &[bool]| -> i64 {
        let mut g = 0i64;
        for (idx, &w) in graph.neighbors(v).iter().enumerate() {
            let wt = graph.weights(v)[idx] as i64;
            if in_region[w as usize] {
                g += wt;
            } else {
                g -= wt;
            }
        }
        g
    };

    while grown < target {
        let v = match heap.pop() {
            Some((stale_gain, v)) if !in_region[v as usize] => {
                // Revalidate lazily: if the stored gain is stale, push the
                // fresh value back and continue.
                let fresh = gain_of(v as usize, &in_region);
                if fresh < stale_gain {
                    heap.push((fresh, v));
                    continue;
                }
                v as usize
            }
            Some(_) => continue, // already absorbed
            None => {
                // Disconnected remainder: restart from a random outside
                // vertex (METIS does the same for disconnected graphs).
                let mut v = rng.gen_range(0..n);
                while in_region[v] {
                    v = (v + 1) % n;
                }
                v
            }
        };
        in_region[v] = true;
        side[v] = true;
        grown += graph.vwgt[v];
        for &w in graph.neighbors(v) {
            if !in_region[w as usize] {
                heap.push((gain_of(w as usize, &in_region), w));
            }
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn half_split_is_weight_balanced() {
        let g = WGraph::from_graph(&gen::mesh3d(6, 6, 6));
        let side = greedy_bisect(&g, 0.5, 4, &mut rng());
        let left: u64 = (0..g.len()).filter(|&v| side[v]).map(|v| g.vwgt[v]).sum();
        let total = g.total_weight();
        let dev = (left as f64 - total as f64 / 2.0).abs() / total as f64;
        assert!(dev < 0.02, "deviation {dev}");
    }

    #[test]
    fn mesh_bisection_beats_random_cut() {
        let g = WGraph::from_graph(&gen::mesh3d(8, 8, 8));
        let side = greedy_bisect(&g, 0.5, 4, &mut rng());
        let cut = g.cut_weight(&side);
        // A random 50/50 cut of an 8^3 mesh cuts ~half of 1344 edges.
        assert!(cut < 400, "greedy growing produced a poor cut: {cut}");
    }

    #[test]
    fn asymmetric_fraction_respected() {
        let g = WGraph::from_graph(&gen::mesh3d(6, 6, 6));
        let side = greedy_bisect(&g, 0.25, 4, &mut rng());
        let left: u64 = (0..g.len()).filter(|&v| side[v]).map(|v| g.vwgt[v]).sum();
        let frac = left as f64 / g.total_weight() as f64;
        assert!((frac - 0.25).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn frac_zero_leaves_everything_on_false_side() {
        let g = WGraph::from_graph(&gen::mesh3d(3, 3, 3));
        let side = greedy_bisect(&g, 0.0, 2, &mut rng());
        assert!(side.iter().all(|&s| !s));
    }

    #[test]
    fn handles_disconnected_graphs() {
        use apg_graph::CsrGraph;
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let wg = WGraph::from_graph(&g);
        let side = greedy_bisect(&wg, 0.5, 3, &mut rng());
        let left = side.iter().filter(|&&s| s).count();
        assert_eq!(left, 3);
    }
}
