//! Coarsening by heavy-edge matching (HEM).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::wgraph::WGraph;

/// One coarsening step: a matching and the contracted graph.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: WGraph,
    /// For each fine vertex, its coarse vertex id.
    pub fine_to_coarse: Vec<u32>,
}

/// Contracts `graph` one level using heavy-edge matching.
///
/// Vertices are visited in random order; each unmatched vertex matches its
/// unmatched neighbour with the heaviest connecting edge (ties: first seen).
/// Unmatched leftovers map to singleton coarse vertices.
pub fn coarsen_once(graph: &WGraph, rng: &mut StdRng) -> CoarseLevel {
    let n = graph.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut mate = vec![u32::MAX; n];
    for &v in &order {
        let v = v as usize;
        if mate[v] != u32::MAX {
            continue;
        }
        let mut best: Option<(u64, u32)> = None;
        for (idx, &w) in graph.neighbors(v).iter().enumerate() {
            if mate[w as usize] == u32::MAX && (w as usize) != v {
                let wt = graph.weights(v)[idx];
                if best.is_none_or(|(bw, _)| wt > bw) {
                    best = Some((wt, w));
                }
            }
        }
        match best {
            Some((_, w)) => {
                mate[v] = w;
                mate[w as usize] = v as u32;
            }
            None => mate[v] = v as u32, // self-matched singleton
        }
    }

    // Assign coarse ids: the smaller endpoint of each matched pair owns it.
    let mut fine_to_coarse = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if fine_to_coarse[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        fine_to_coarse[v] = next;
        if m != v {
            fine_to_coarse[m] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;

    // Contract: sum vertex weights, merge parallel edges, drop internal ones.
    let mut vwgt = vec![0u64; coarse_n];
    for v in 0..n {
        vwgt[fine_to_coarse[v] as usize] += graph.vwgt[v];
    }
    let mut xadj = Vec::with_capacity(coarse_n + 1);
    let mut adjncy: Vec<u32> = Vec::new();
    let mut adjwgt: Vec<u64> = Vec::new();
    xadj.push(0);
    // Scratch accumulator: coarse neighbour -> weight, reset per vertex via
    // a timestamp array to stay O(|E|).
    let mut weight_acc = vec![0u64; coarse_n];
    let mut stamp = vec![u32::MAX; coarse_n];
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); coarse_n];
    for v in 0..n {
        members[fine_to_coarse[v] as usize].push(v as u32);
    }
    for (c, group) in members.iter().enumerate() {
        let mut touched: Vec<u32> = Vec::new();
        for &v in group {
            let v = v as usize;
            for (idx, &w) in graph.neighbors(v).iter().enumerate() {
                let cw = fine_to_coarse[w as usize];
                if cw as usize == c {
                    continue; // contracted edge
                }
                if stamp[cw as usize] != c as u32 {
                    stamp[cw as usize] = c as u32;
                    weight_acc[cw as usize] = 0;
                    touched.push(cw);
                }
                weight_acc[cw as usize] += graph.weights(v)[idx];
            }
        }
        touched.sort_unstable();
        for &cw in &touched {
            adjncy.push(cw);
            adjwgt.push(weight_acc[cw as usize]);
        }
        xadj.push(adjncy.len());
    }

    CoarseLevel {
        graph: WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        fine_to_coarse,
    }
}

/// Coarsens repeatedly until the graph has at most `target` vertices or a
/// level shrinks by less than 10% (diminishing returns).
///
/// Returns the levels from finest to coarsest.
pub fn coarsen_to(graph: &WGraph, target: usize, rng: &mut StdRng) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = graph.clone();
    while current.len() > target {
        let level = coarsen_once(&current, rng);
        let shrink = level.graph.len() as f64 / current.len() as f64;
        let next = level.graph.clone();
        levels.push(level);
        if shrink > 0.9 {
            break; // matching stalled (e.g. star graphs)
        }
        current = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn coarsening_preserves_total_vertex_weight() {
        let g = WGraph::from_graph(&gen::mesh3d(6, 6, 6));
        let lvl = coarsen_once(&g, &mut rng());
        assert_eq!(lvl.graph.total_weight(), g.total_weight());
        assert!(lvl.graph.len() < g.len());
        assert!(lvl.graph.len() >= g.len() / 2);
    }

    #[test]
    fn coarsening_preserves_cut_under_projection() {
        let g = WGraph::from_graph(&gen::mesh3d(4, 4, 4));
        let lvl = coarsen_once(&g, &mut rng());
        // Build a random coarse bisection and compare cut weights.
        let coarse_side: Vec<bool> = (0..lvl.graph.len()).map(|i| i % 2 == 0).collect();
        let fine_side: Vec<bool> = (0..g.len())
            .map(|v| coarse_side[lvl.fine_to_coarse[v] as usize])
            .collect();
        assert_eq!(g.cut_weight(&fine_side), lvl.graph.cut_weight(&coarse_side));
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = WGraph::from_graph(&gen::mesh3d(8, 8, 8));
        let levels = coarsen_to(&g, 50, &mut rng());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.len() <= 100, "got {}", coarsest.len());
    }

    #[test]
    fn singleton_graph_is_fixed_point() {
        let g = WGraph {
            xadj: vec![0, 0],
            adjncy: vec![],
            adjwgt: vec![],
            vwgt: vec![3],
        };
        let lvl = coarsen_once(&g, &mut rng());
        assert_eq!(lvl.graph.len(), 1);
        assert_eq!(lvl.graph.vwgt, vec![3]);
    }
}
