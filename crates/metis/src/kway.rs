//! Recursive-bisection k-way partitioning over the multilevel pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use apg_partition::PartitionId;

use crate::bisect::greedy_bisect;
use crate::coarsen::coarsen_to;
use crate::refine::{fm_refine, SideLimits};
use crate::wgraph::WGraph;

/// Vertex count below which coarsening stops and initial bisection runs.
const COARSEST_SIZE: usize = 120;
/// Greedy-graph-growing restarts at the coarsest level.
const BISECT_TRIES: usize = 6;
/// FM passes per uncoarsening level.
const FM_PASSES: usize = 6;

/// Partitions `graph` into `k` parts via multilevel recursive bisection,
/// returning one partition id per (compact) vertex.
///
/// Weight is split proportionally at every bisection (`ceil(k/2) : floor(k/2)`),
/// so any `k` is supported. `imbalance` bounds each side's overweight at
/// every split.
pub fn recursive_bisection(
    graph: &WGraph,
    k: PartitionId,
    imbalance: f64,
    seed: u64,
) -> Vec<PartitionId> {
    let mut assignment = vec![0 as PartitionId; graph.len()];
    if graph.is_empty() || k <= 1 {
        return assignment;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Identity map at the top level.
    let ids: Vec<u32> = (0..graph.len() as u32).collect();
    split(graph, &ids, 0, k, imbalance, &mut rng, &mut assignment);
    assignment
}

/// Recursively bisects `graph` (whose compact ids map to `global_ids`),
/// writing partition ids `first..first + k` into `assignment`.
fn split(
    graph: &WGraph,
    global_ids: &[u32],
    first: PartitionId,
    k: PartitionId,
    imbalance: f64,
    rng: &mut StdRng,
    assignment: &mut [PartitionId],
) {
    if k == 1 || graph.len() <= 1 {
        // Degenerate cases: no further split possible. With more requested
        // partitions than vertices, the surplus ids stay empty.
        for &g in global_ids {
            assignment[g as usize] = first;
        }
        return;
    }
    let k_left = k.div_ceil(2);
    let frac = k_left as f64 / k as f64;
    let side = multilevel_bisect(graph, frac, imbalance, rng);
    let (left, left_map) = graph.subgraph(&side, true);
    let (right, right_map) = graph.subgraph(&side, false);
    let left_globals: Vec<u32> = left_map.iter().map(|&v| global_ids[v as usize]).collect();
    let right_globals: Vec<u32> = right_map.iter().map(|&v| global_ids[v as usize]).collect();
    split(
        &left,
        &left_globals,
        first,
        k_left,
        imbalance,
        rng,
        assignment,
    );
    split(
        &right,
        &right_globals,
        first + k_left,
        k - k_left,
        imbalance,
        rng,
        assignment,
    );
}

/// One multilevel bisection: coarsen, bisect the coarsest graph, project
/// back refining with FM at every level.
pub fn multilevel_bisect(graph: &WGraph, frac: f64, imbalance: f64, rng: &mut StdRng) -> Vec<bool> {
    let levels = coarsen_to(graph, COARSEST_SIZE, rng);
    let coarsest = levels.last().map(|l| &l.graph).unwrap_or(graph);
    let mut side = greedy_bisect(coarsest, frac, BISECT_TRIES, rng);
    let limits = SideLimits::proportional(graph.total_weight(), frac, imbalance);
    fm_refine(coarsest, &mut side, limits, FM_PASSES);

    // Project through the levels, refining at each.
    for level_idx in (0..levels.len()).rev() {
        let fine_graph = if level_idx == 0 {
            graph
        } else {
            &levels[level_idx - 1].graph
        };
        let map = &levels[level_idx].fine_to_coarse;
        let mut fine_side = vec![false; fine_graph.len()];
        for v in 0..fine_graph.len() {
            fine_side[v] = side[map[v] as usize];
        }
        fm_refine(fine_graph, &mut fine_side, limits, FM_PASSES);
        side = fine_side;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;

    #[test]
    fn multilevel_bisect_quality_on_mesh() {
        let g = WGraph::from_graph(&gen::mesh3d(10, 10, 10));
        let mut rng = StdRng::seed_from_u64(1);
        let side = multilevel_bisect(&g, 0.5, 1.10, &mut rng);
        let cut = g.cut_weight(&side);
        // The minimal axis cut of a 10^3 mesh is 100; multilevel should land
        // in that vicinity (well under a random ~2700).
        assert!(cut < 250, "cut {cut}");
    }

    #[test]
    fn recursive_bisection_uses_all_partitions() {
        let g = WGraph::from_graph(&gen::mesh3d(6, 6, 6));
        let assignment = recursive_bisection(&g, 5, 1.10, 3);
        for p in 0..5u16 {
            let size = assignment.iter().filter(|&&a| a == p).count();
            assert!(size > 0, "partition {p} empty");
            // Proportional split: ~43 each, allow slack.
            assert!((30..=60).contains(&size), "partition {p} size {size}");
        }
    }

    #[test]
    fn k_two_is_plain_bisection() {
        let g = WGraph::from_graph(&gen::mesh3d(4, 4, 4));
        let a = recursive_bisection(&g, 2, 1.10, 9);
        let ones = a.iter().filter(|&&p| p == 1).count();
        assert!((28..=36).contains(&ones), "unbalanced: {ones}");
    }

    #[test]
    fn more_partitions_than_vertices_is_fine() {
        // Found by proptest: a subgraph side can end up with fewer vertices
        // than requested partitions; the recursion must not bisect an empty
        // side.
        let g = WGraph::from_graph(&apg_graph::CsrGraph::from_edges(3, &[(0, 1)]));
        let a = recursive_bisection(&g, 5, 1.10, 1);
        assert_eq!(a.len(), 3);
        for &p in &a {
            assert!(p < 5);
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = WGraph {
            xadj: vec![0],
            adjncy: vec![],
            adjwgt: vec![],
            vwgt: vec![],
        };
        assert!(recursive_bisection(&g, 4, 1.10, 0).is_empty());
    }
}
