//! Fiduccia–Mattheyses boundary refinement.

use crate::wgraph::WGraph;

/// Balance constraints for a bisection: each side's vertex weight must stay
/// at or below its maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SideLimits {
    /// Maximum weight of the `true` side.
    pub max_true: u64,
    /// Maximum weight of the `false` side.
    pub max_false: u64,
}

impl SideLimits {
    /// Limits allowing each side `imbalance` times its proportional share
    /// (`frac` of the total for the `true` side).
    pub fn proportional(total: u64, frac: f64, imbalance: f64) -> Self {
        SideLimits {
            max_true: ((total as f64 * frac) * imbalance).ceil() as u64,
            max_false: ((total as f64 * (1.0 - frac)) * imbalance).ceil() as u64,
        }
    }
}

/// Refines a bisection in place with FM passes until a pass yields no
/// improvement, returning the final cut weight.
///
/// Each pass tentatively moves every vertex at most once in best-gain-first
/// order (lazy max-heap), allowing negative-gain moves to escape local
/// minima, then rewinds to the best prefix — the classic FM hill-climbing
/// scheme. Balance limits are never violated mid-pass.
pub fn fm_refine(graph: &WGraph, side: &mut [bool], limits: SideLimits, max_passes: usize) -> u64 {
    let n = graph.len();
    let mut best_cut = graph.cut_weight(side);
    for _ in 0..max_passes {
        let mut weight_true: u64 = (0..n).filter(|&v| side[v]).map(|v| graph.vwgt[v]).sum();
        let mut weight_false: u64 = graph.total_weight() - weight_true;

        let gain_of = |v: usize, side: &[bool]| -> i64 {
            let mut g = 0i64;
            for (idx, &w) in graph.neighbors(v).iter().enumerate() {
                let wt = graph.weights(v)[idx] as i64;
                if side[w as usize] == side[v] {
                    g -= wt; // moving v would cut this edge
                } else {
                    g += wt; // moving v would uncut it
                }
            }
            g
        };

        let mut heap: std::collections::BinaryHeap<(i64, u32)> = (0..n as u32)
            .map(|v| (gain_of(v as usize, side), v))
            .collect();
        let mut locked = vec![false; n];
        let mut cur_cut = graph.cut_weight(side);
        let mut pass_best_cut = cur_cut;
        let mut moves: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;

        while let Some((stale_gain, v)) = heap.pop() {
            let vu = v as usize;
            if locked[vu] {
                continue;
            }
            let fresh = gain_of(vu, side);
            if fresh < stale_gain {
                heap.push((fresh, v));
                continue;
            }
            // Balance check for the tentative move.
            let w = graph.vwgt[vu];
            let fits = if side[vu] {
                weight_false + w <= limits.max_false
            } else {
                weight_true + w <= limits.max_true
            };
            if !fits {
                locked[vu] = true; // cannot move this pass
                continue;
            }
            // Apply the move.
            if side[vu] {
                weight_true -= w;
                weight_false += w;
            } else {
                weight_false -= w;
                weight_true += w;
            }
            side[vu] = !side[vu];
            locked[vu] = true;
            cur_cut = (cur_cut as i64 - fresh) as u64;
            moves.push(v);
            if cur_cut < pass_best_cut {
                pass_best_cut = cur_cut;
                best_prefix = moves.len();
            }
            for &nb in graph.neighbors(vu) {
                if !locked[nb as usize] {
                    heap.push((gain_of(nb as usize, side), nb));
                }
            }
        }

        // Rewind moves beyond the best prefix.
        for &v in &moves[best_prefix..] {
            side[v as usize] = !side[v as usize];
        }
        if pass_best_cut >= best_cut {
            // No improvement this pass (the rewind restored best state).
            break;
        }
        best_cut = pass_best_cut;
    }
    best_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{gen, CsrGraph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn improves_a_bad_bisection() {
        let g = WGraph::from_graph(&gen::mesh3d(6, 6, 6));
        let mut rng = StdRng::seed_from_u64(3);
        let mut side: Vec<bool> = (0..g.len()).map(|_| rng.gen_bool(0.5)).collect();
        let before = g.cut_weight(&side);
        let limits = SideLimits::proportional(g.total_weight(), 0.5, 1.10);
        let after = fm_refine(&g, &mut side, limits, 8);
        assert!(after < before / 2, "FM only improved {before} -> {after}");
        assert_eq!(after, g.cut_weight(&side), "returned cut must match state");
    }

    #[test]
    fn respects_balance_limits() {
        let g = WGraph::from_graph(&gen::mesh3d(5, 5, 5));
        let mut side: Vec<bool> = (0..g.len()).map(|v| v % 2 == 0).collect();
        let limits = SideLimits::proportional(g.total_weight(), 0.5, 1.10);
        fm_refine(&g, &mut side, limits, 8);
        let wt: u64 = (0..g.len()).filter(|&v| side[v]).map(|v| g.vwgt[v]).sum();
        assert!(wt <= limits.max_true);
        assert!(g.total_weight() - wt <= limits.max_false);
    }

    #[test]
    fn optimal_bisection_is_stable() {
        // Two triangles joined by one edge: the single-edge cut is optimal.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let wg = WGraph::from_graph(&g);
        let mut side = vec![true, true, true, false, false, false];
        let limits = SideLimits::proportional(6, 0.5, 1.10);
        let cut = fm_refine(&wg, &mut side, limits, 4);
        assert_eq!(cut, 1);
        assert_eq!(side, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn weighted_edges_guide_refinement() {
        // Path 0-1-2 with heavy edge 0-1: cut must fall on 1-2.
        let wg = WGraph {
            xadj: vec![0, 1, 3, 4],
            adjncy: vec![1, 0, 2, 1],
            adjwgt: vec![10, 10, 1, 1],
            vwgt: vec![1, 1, 1],
        };
        let mut side = vec![true, false, false]; // cuts the heavy edge
        let limits = SideLimits {
            max_true: 2,
            max_false: 2,
        };
        let cut = fm_refine(&wg, &mut side, limits, 4);
        assert_eq!(cut, 1);
        assert_eq!(side[0], side[1], "heavy pair must end up together");
    }
}
