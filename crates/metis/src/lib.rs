//! A multilevel k-way graph partitioner in the spirit of METIS.
//!
//! The paper uses METIS (Karypis & Kumar) as the centralised
//! state-of-the-art benchmark that its decentralised heuristic is compared
//! against (the dashed line in Figure 4). METIS itself is not
//! redistributable here, so this crate implements the same classic
//! multilevel scheme from scratch:
//!
//! 1. **Coarsening** — heavy-edge matching contracts the graph level by
//!    level until it is small ([`coarsen`]).
//! 2. **Initial partitioning** — greedy graph growing bisects the coarsest
//!    graph ([`bisect`]).
//! 3. **Uncoarsening** — the bisection is projected back up and refined at
//!    every level with Fiduccia–Mattheyses boundary passes ([`refine`]).
//! 4. **k-way** — recursive bisection splits weight proportionally for any
//!    `k`, not just powers of two ([`kway`]).
//!
//! This is a *quality benchmark*, deliberately centralised: it sees the
//! whole graph, exactly the property the paper's decentralised heuristic
//! avoids needing.
//!
//! # Example
//!
//! ```
//! use apg_graph::gen;
//! use apg_partition::cut_ratio;
//!
//! let g = gen::mesh3d(8, 8, 8);
//! let p = apg_metis::partition(&g, 9, 1.10, 42);
//! assert!(cut_ratio(&g, &p) < 0.25);
//! ```

pub mod bisect;
pub mod coarsen;
pub mod kway;
pub mod refine;
pub mod wgraph;

use apg_graph::Graph;
use apg_partition::{PartitionId, Partitioning};

/// Partitions `graph` into `k` parts with at most `imbalance` (e.g. `1.10`)
/// times the balanced vertex load per part.
///
/// Deterministic for a fixed `seed`.
///
/// # Panics
///
/// Panics if `k == 0` or `imbalance < 1.0`.
pub fn partition<G: Graph>(graph: &G, k: PartitionId, imbalance: f64, seed: u64) -> Partitioning {
    assert!(k > 0, "need at least one partition");
    assert!(imbalance >= 1.0, "imbalance must be >= 1.0");
    let wg = wgraph::WGraph::from_graph(graph);
    let assignment = kway::recursive_bisection(&wg, k, imbalance, seed);
    // Map compact ids back to original vertex slots (tombstones stay 0).
    let mut full = vec![0 as PartitionId; graph.num_vertices()];
    for (compact, v) in graph.vertices().enumerate() {
        full[v as usize] = assignment[compact];
    }
    Partitioning::from_assignment(full, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use apg_partition::{cut_ratio, vertex_imbalance};

    #[test]
    fn partitions_mesh_with_low_cut() {
        let g = gen::mesh3d(10, 10, 10);
        let p = partition(&g, 9, 1.10, 1);
        let cr = cut_ratio(&g, &p);
        assert!(cr < 0.22, "cut ratio {cr} too high for a mesh");
    }

    #[test]
    fn respects_imbalance_bound() {
        let g = gen::mesh3d(10, 10, 10);
        let p = partition(&g, 9, 1.10, 1);
        let imb = vertex_imbalance(&p);
        assert!(
            imb <= 1.14,
            "imbalance {imb} exceeds bound (+rounding slack)"
        );
    }

    #[test]
    fn k_equal_one_puts_everything_together() {
        let g = gen::mesh3d(4, 4, 4);
        let p = partition(&g, 1, 1.10, 1);
        assert_eq!(p.size(0), 64);
        assert_eq!(cut_ratio(&g, &p), 0.0);
    }

    #[test]
    fn handles_non_power_of_two_k() {
        let g = gen::mesh3d(9, 9, 9);
        for k in [3, 5, 7, 9] {
            let p = partition(&g, k, 1.10, 2);
            let imb = vertex_imbalance(&p);
            assert!(imb < 1.25, "k={k}: imbalance {imb}");
            for part in 0..k {
                assert!(p.size(part) > 0, "k={k}: partition {part} empty");
            }
        }
    }

    #[test]
    fn beats_hash_partitioning_clearly() {
        use apg_partition::{CapacityModel, InitialStrategy};
        let g = gen::holme_kim(2000, 5, 0.1, 3);
        let caps = CapacityModel::vertex_balanced(2000, 9, 1.10);
        let hash = cut_ratio(&g, &InitialStrategy::Hash.assign(&g, &caps, 1));
        let metis = cut_ratio(&g, &partition(&g, 9, 1.10, 1));
        assert!(metis < hash, "metis {metis} should beat hash {hash}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::mesh3d(6, 6, 6);
        assert_eq!(partition(&g, 4, 1.10, 7), partition(&g, 4, 1.10, 7));
    }
}
