//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to mark types as
//! wire-ready — nothing serialises through the serde data model yet (see the
//! `serde_round_trip` test in `apg-graph`, which formats fields manually).
//! So this vendored crate ships the two traits as markers plus derive macros
//! that emit empty impls. When real serialisation lands (snapshots, RPC),
//! swap the workspace `path` dependency for registry serde; every
//! `#[derive(Serialize, Deserialize)]` already in the tree keeps working.

/// Marker: the type is intended to be serialisable.
pub trait Serialize {}

/// Marker: the type is intended to be deserialisable.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
