//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Mirrors the API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`/`bench_function`,
//! `BenchmarkGroup::bench_with_input`/`sample_size`/`finish`, `BenchmarkId`,
//! `black_box`, `Bencher::iter` — so `cargo bench --no-run` compile-checks
//! the real bench sources. Running the benches times each invocation of the
//! routine individually and prints mean, min and median wall-clock per
//! iteration — min/median keep warm-up outliers (allocator growth, first-
//! touch page faults, cold caches) from skewing scaling comparisons — but
//! none of criterion's heavier statistics. Swap the workspace `path`
//! dependency for registry criterion to get the real harness.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How many times [`Bencher::iter`] invokes the routine when benches are
/// actually executed (CI only compile-checks them). Each invocation is
/// timed as its own sample so the reported min/median are meaningful.
const ITERS: u32 = 10;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark within a group; `Display` matches criterion's
/// `function/parameter` convention closely enough for log-reading.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Bencher {
    /// Wall-clock of each individual routine invocation, in nanoseconds.
    samples: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(ITERS as usize),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<50} (routine never ran)");
        return;
    }
    let (mean, min, median) = summarize(&mut b.samples);
    println!(
        "bench {id:<50} mean {mean:>12} ns/iter  min {min:>12}  median {median:>12} (n={})",
        b.samples.len()
    );
}

/// Sorts the samples and returns `(mean, min, median)` nanoseconds.
///
/// # Panics
///
/// Panics if `samples` is empty.
fn summarize(samples: &mut [u128]) -> (u128, u128, u128) {
    samples.sort_unstable();
    let n = samples.len();
    let mean = samples.iter().sum::<u128>() / n as u128;
    let median = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2
    };
    (mean, samples[0], median)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_resists_warmup_outliers() {
        // One cold 1000ns sample among warm 10ns ones: the mean is dragged
        // up ~10x, min/median stay honest — which is why the scaling bench
        // reads them.
        let mut samples = vec![1000u128, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let (mean, min, median) = summarize(&mut samples);
        assert_eq!(min, 10);
        assert_eq!(median, 10);
        assert_eq!(mean, 109);
    }

    #[test]
    fn even_sample_count_takes_middle_mean() {
        let mut samples = vec![40u128, 10, 20, 30];
        let (_, min, median) = summarize(&mut samples);
        assert_eq!(min, 10);
        assert_eq!(median, 25);
    }

    #[test]
    fn bencher_records_one_sample_per_invocation() {
        let mut count = 0u32;
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| count += 1);
        assert_eq!(count, ITERS);
        assert_eq!(b.samples.len(), ITERS as usize);
    }
}
