//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Mirrors the API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`/`bench_function`,
//! `BenchmarkGroup::bench_with_input`/`sample_size`/`finish`, `BenchmarkId`,
//! `black_box`, `Bencher::iter` — so `cargo bench --no-run` compile-checks
//! the real bench sources. Running the benches times each closure over a
//! fixed number of iterations and prints mean wall-clock time per iteration:
//! honest numbers, none of criterion's statistics. Swap the workspace `path`
//! dependency for registry criterion to get the real harness.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How many times [`Bencher::iter`] invokes the routine when benches are
/// actually executed (CI only compile-checks them).
const ITERS: u32 = 10;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies a benchmark within a group; `Display` matches criterion's
/// `function/parameter` convention closely enough for log-reading.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Bencher {
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.total_iters += u64::from(ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        total_nanos: 0,
        total_iters: 0,
    };
    f(&mut b);
    let per_iter = b
        .total_nanos
        .checked_div(u128::from(b.total_iters))
        .unwrap_or(0);
    println!(
        "bench {id:<50} {per_iter:>12} ns/iter (n={})",
        b.total_iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
