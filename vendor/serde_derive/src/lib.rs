//! Derive macros for the vendored serde stand-in: emit empty marker-trait
//! impls. No `syn`/`quote` (offline build), so the input is scanned by hand:
//! the type name is the identifier following `struct`/`enum`/`union`, and a
//! `<...>` group after it would be generics (unsupported — none of the
//! workspace's serialisable types are generic; the macro panics loudly if
//! that changes rather than emitting a broken impl).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ref id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                            panic!(
                                "vendored serde_derive does not support generic type `{name}`; \
                                 extend vendor/serde_derive or switch to registry serde"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("no struct/enum/union found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
