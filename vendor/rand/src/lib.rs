//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements exactly the rand 0.8 API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for simulation workloads, though its
//! streams differ from upstream `StdRng` (ChaCha12), so seeds are not
//! bit-compatible with the real crate.

use std::ops::Range;

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Implemented for half-open ranges
/// of the primitive integer and float types.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply avoids modulo bias for the
                // range widths a graph workload uses (always << 2^64).
                let hi = ((rng.next_u64() as u128 * width) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring rand 0.8's `Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. `p >= 1.0` always returns true.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers; only `shuffle` (Fisher–Yates) is provided.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let w = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * w) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
