//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and `prop_assert!`/`prop_assert_eq!` — driven by a
//! deterministic seeded RNG. Differences from the real crate: no shrinking
//! (a failure reports the raw generated case via the assertion message) and
//! no persisted failure seeds. Swap the workspace `path` dependency for
//! registry proptest to get both back; the test sources need no changes.

use std::ops::Range;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

use rand::rngs::StdRng;
use rand::Rng;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values; the stub has generation only, no shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// `assert!` under proptest's name; the generated case is not echoed (no
/// shrinking machinery), so put identifying detail in the message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-definition macro: each `fn name(binder in strategy, ...) { .. }`
/// becomes a `#[test]` that runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binder:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Fixed seed: deterministic in CI, varied per case by RNG state.
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                0x5eed_0f_ca5e5u64,
            );
            for __case in 0..__config.cases {
                $( let $binder = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            n in 2usize..10,
            xs in crate::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            nk in (1usize..8).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k))),
        ) {
            let (n, k) = nk;
            prop_assert!(k < n, "flat-mapped k must depend on n");
        }
    }
}
