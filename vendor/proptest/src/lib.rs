//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! Implements the surface the workspace's property tests use — the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and `prop_assert!`/`prop_assert_eq!` — driven by a
//! deterministic seeded RNG, **with failure shrinking**: when a case fails,
//! the harness minimises it by binary search before reporting.
//!
//! # Shrinking model
//!
//! Like the real crate, generation produces a [`ValueTree`] rather than a
//! bare value: the tree remembers how the value was built and can propose
//! progressively simpler variants. The harness drives the tree with the
//! two-call protocol —
//!
//! * [`ValueTree::simplify`] after a **failing** run proposes a simpler
//!   candidate,
//! * [`ValueTree::complicate`] after a **passing** run backs off towards
//!   the last failure —
//!
//! so numeric ranges bisect towards their lower bound, vectors first
//! bisect their length and then minimise each element, `prop_flat_map`
//! shrinks its source (regenerating the dependent value deterministically)
//! before shrinking the dependent value itself. The minimal failing input
//! is printed with the panic, and [`shrink_failure`] exposes the engine so
//! tests can assert minimisation programmatically.
//!
//! Remaining differences from the real crate: no persisted failure seeds
//! and no `complicate`-time caching, and float ranges shrink by bounded
//! bisection rather than exhaustively. Swap the workspace `path`
//! dependency for registry proptest to get the full machinery; the test
//! sources need no changes.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Upper bound on shrink steps (candidate re-runs) per failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// ValueTree: a generated value plus its shrink search state.
// ---------------------------------------------------------------------------

/// A generated value together with the state needed to minimise it.
///
/// Protocol (driven by [`shrink_failure`]): after testing
/// [`ValueTree::current`], call [`ValueTree::simplify`] if the test
/// **failed** and [`ValueTree::complicate`] if it **passed**. Either call
/// returns `true` when a new candidate is available at `current()`, and
/// `false` when the search is exhausted — at which point `current()` rests
/// at the simplest variant still known to fail.
pub trait ValueTree {
    type Value;

    /// The candidate value.
    fn current(&self) -> Self::Value;

    /// Last candidate failed: propose a simpler one. `false` = exhausted.
    fn simplify(&mut self) -> bool;

    /// Last candidate passed: back off towards the last known failure.
    /// `false` = exhausted.
    fn complicate(&mut self) -> bool;
}

/// A generator of random values, shrinkable via the [`ValueTree`] it
/// produces.
pub trait Strategy {
    type Value;
    type Tree: ValueTree<Value = Self::Value>;

    /// Draws a value (wrapped in its shrink tree) from `rng`.
    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges: binary search towards the range start.
// ---------------------------------------------------------------------------

/// Shrink state for integer ranges: bisects `[range.start, failing)`,
/// converging on the smallest failing value.
#[derive(Debug, Clone)]
pub struct BisectTree<T> {
    /// Lower bound of the untested window (everything below passed or is
    /// out of range).
    lo: T,
    /// Smallest value known to fail.
    hi: T,
    /// Candidate under test.
    curr: T,
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Tree = BisectTree<$t>;

            fn new_tree(&self, rng: &mut StdRng) -> BisectTree<$t> {
                let v = rng.gen_range(self.clone());
                BisectTree { lo: self.start, hi: v, curr: v }
            }
        }

        impl BisectTree<$t> {
            /// `floor((lo + hi) / 2)` without intermediate overflow:
            /// `hi - lo` blows up for signed ranges wider than half the
            /// domain (e.g. `i64::MIN..i64::MAX`), so average the shared
            /// bits and the halved differing bits instead.
            fn midpoint(lo: $t, hi: $t) -> $t {
                (lo & hi) + ((lo ^ hi) >> 1)
            }
        }

        impl ValueTree for BisectTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.curr
            }

            fn simplify(&mut self) -> bool {
                self.hi = self.curr;
                if self.lo >= self.hi {
                    return false;
                }
                self.curr = Self::midpoint(self.lo, self.hi);
                true
            }

            fn complicate(&mut self) -> bool {
                if self.curr >= self.hi {
                    return false;
                }
                self.lo = self.curr + 1;
                if self.lo >= self.hi {
                    self.curr = self.hi;
                    return false;
                }
                self.curr = Self::midpoint(self.lo, self.hi);
                true
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink state for float ranges: bounded bisection towards the range
/// start (floats never bottom out exactly, so the step budget caps it).
#[derive(Debug, Clone)]
pub struct FloatTree<T> {
    lo: T,
    hi: T,
    curr: T,
    steps_left: u32,
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Tree = FloatTree<$t>;

            fn new_tree(&self, rng: &mut StdRng) -> FloatTree<$t> {
                let v = rng.gen_range(self.clone());
                FloatTree { lo: self.start, hi: v, curr: v, steps_left: 32 }
            }
        }

        impl ValueTree for FloatTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.curr
            }

            fn simplify(&mut self) -> bool {
                self.hi = self.curr;
                if self.steps_left == 0 || self.hi <= self.lo {
                    return false;
                }
                self.steps_left -= 1;
                self.curr = self.lo + (self.hi - self.lo) / 2.0;
                true
            }

            fn complicate(&mut self) -> bool {
                if self.steps_left == 0 || self.curr >= self.hi {
                    // Rest on the simplest variant still known to fail, as
                    // the ValueTree contract requires: on the budget-
                    // exhaustion path `curr` is a candidate that *passed*.
                    self.curr = self.hi;
                    return false;
                }
                self.steps_left -= 1;
                self.lo = self.curr;
                self.curr = self.lo + (self.hi - self.lo) / 2.0;
                true
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Combinators: map, flat_map, tuples.
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    inner: S,
    f: F,
}

pub struct MapTree<T, F> {
    inner: T,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(rng),
            f: self.f.clone(),
        }
    }
}

impl<T: ValueTree, O, F: Fn(T::Value) -> O> ValueTree for MapTree<T, F> {
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

/// Tree for [`Strategy::prop_flat_map`]: shrinks the *source* first (each
/// step deterministically regenerates the dependent tree from a saved RNG
/// snapshot), then shrinks the dependent value.
pub struct FlatMapTree<S: Strategy, T: Strategy, F> {
    source: S::Tree,
    f: F,
    /// RNG snapshot from generation time: cloned for every regeneration so
    /// equal source values always map to equal dependent values.
    rng: StdRng,
    inner: T::Tree,
    shrinking_inner: bool,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T::Value;
    type Tree = FlatMapTree<S, T, F>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        let source = self.inner.new_tree(rng);
        // Split off an independent, reusable snapshot for regeneration.
        let snapshot = StdRng::seed_from_u64(rng.gen());
        let inner = (self.f)(source.current()).new_tree(&mut snapshot.clone());
        FlatMapTree {
            source,
            f: self.f.clone(),
            rng: snapshot,
            inner,
            shrinking_inner: false,
        }
    }
}

impl<S, T, F> FlatMapTree<S, T, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    fn regenerate(&mut self) {
        self.inner = (self.f)(self.source.current()).new_tree(&mut self.rng.clone());
    }
}

impl<S, T, F> ValueTree for FlatMapTree<S, T, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T::Value;

    fn current(&self) -> T::Value {
        self.inner.current()
    }

    fn simplify(&mut self) -> bool {
        if !self.shrinking_inner {
            if self.source.simplify() {
                self.regenerate();
                return true;
            }
            self.shrinking_inner = true;
        }
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        if !self.shrinking_inner {
            if self.source.complicate() {
                self.regenerate();
                return true;
            }
            // The source settled back on its minimal failing value; its
            // dependent value regenerates to the variant that failed with
            // it. Offer that variant as the next candidate (it is known to
            // fail) so the engine transitions into shrinking the dependent
            // value — calling `complicate` on the fresh inner tree instead
            // would return false and abort the whole shrink.
            self.shrinking_inner = true;
            self.regenerate();
            return true;
        }
        self.inner.complicate()
    }
}

macro_rules! impl_tuple_strategy {
    ($( ($($name:ident . $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            type Tree = TupleTree<($($name::Tree,)+)>;

            fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
                TupleTree { trees: ($(self.$idx.new_tree(rng),)+), idx: 0 }
            }
        }

        impl<$($name: ValueTree),+> ValueTree for TupleTree<($($name,)+)> {
            type Value = ($($name::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                // Shrink components left to right; when one exhausts (its
                // current resting on its simplest failing variant), move on.
                loop {
                    let more = match self.idx {
                        $($idx => self.trees.$idx.simplify(),)+
                        _ => return false,
                    };
                    if more {
                        return true;
                    }
                    self.idx += 1;
                }
            }

            fn complicate(&mut self) -> bool {
                let more = match self.idx {
                    $($idx => self.trees.$idx.complicate(),)+
                    _ => return false,
                };
                if more {
                    return true;
                }
                // Component settled; continue simplifying the next one.
                self.idx += 1;
                self.simplify()
            }
        }
    )+};
}

/// Tree for tuple strategies: shrinks components sequentially.
pub struct TupleTree<T> {
    trees: T,
    idx: usize,
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, G.5),
);

// ---------------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Range, Rng, StdRng, Strategy, ValueTree};

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Tree = VecTree<S::Tree>;

        fn new_tree(&self, rng: &mut StdRng) -> VecTree<S::Tree> {
            let len = rng.gen_range(self.size.clone());
            let elems: Vec<S::Tree> = (0..len).map(|_| self.element.new_tree(rng)).collect();
            VecTree {
                elems,
                len_lo: self.size.start,
                len_hi: len,
                curr_len: len,
                phase: Phase::Len,
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Phase {
        /// Bisecting the length (the value is the prefix `..curr_len`).
        Len,
        /// Minimising element `i` of the settled-length prefix.
        Elem(usize),
    }

    /// Tree for [`vec()`](crate::collection::vec): first bisects the length
    /// towards the minimum (dropping a suffix is the cheapest big
    /// simplification), then
    /// minimises the surviving elements one at a time.
    pub struct VecTree<T> {
        elems: Vec<T>,
        len_lo: usize,
        /// Smallest length known to fail.
        len_hi: usize,
        curr_len: usize,
        phase: Phase,
    }

    impl<T: ValueTree> VecTree<T> {
        /// Enters element phase at index `i`, skipping exhausted elements.
        fn simplify_elems_from(&mut self, mut i: usize) -> bool {
            while i < self.curr_len {
                self.phase = Phase::Elem(i);
                if self.elems[i].simplify() {
                    return true;
                }
                i += 1;
            }
            self.phase = Phase::Elem(self.curr_len);
            false
        }
    }

    impl<T: ValueTree> ValueTree for VecTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Vec<T::Value> {
            self.elems[..self.curr_len]
                .iter()
                .map(ValueTree::current)
                .collect()
        }

        fn simplify(&mut self) -> bool {
            match self.phase {
                Phase::Len => {
                    self.len_hi = self.curr_len;
                    if self.len_lo >= self.len_hi {
                        return self.simplify_elems_from(0);
                    }
                    self.curr_len = self.len_lo + (self.len_hi - self.len_lo) / 2;
                    true
                }
                Phase::Elem(i) => {
                    if self.elems[i].simplify() {
                        return true;
                    }
                    self.simplify_elems_from(i + 1)
                }
            }
        }

        fn complicate(&mut self) -> bool {
            match self.phase {
                Phase::Len => {
                    if self.curr_len >= self.len_hi {
                        return false;
                    }
                    self.len_lo = self.curr_len + 1;
                    if self.len_lo >= self.len_hi {
                        // Length settled at the smallest failing value;
                        // move on to the elements.
                        self.curr_len = self.len_hi;
                        return self.simplify_elems_from(0);
                    }
                    self.curr_len = self.len_lo + (self.len_hi - self.len_lo) / 2;
                    true
                }
                Phase::Elem(i) => {
                    if self.elems[i].complicate() {
                        return true;
                    }
                    self.simplify_elems_from(i + 1)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The shrinking engine and the case runner.
// ---------------------------------------------------------------------------

/// Minimises a failing case.
///
/// Precondition: `fails(&tree.current())` was observed `true`. Drives the
/// [`ValueTree`] protocol — `simplify` after failures, `complicate` after
/// passes — re-running `fails` on every candidate, for at most `budget`
/// runs. Returns the simplest failing value observed and the number of
/// candidates tried.
///
/// Public so tests can assert minimisation behaviour directly (see the
/// codec round-trip shrinking tests); the [`proptest!`] harness uses it
/// for every failure.
pub fn shrink_failure<T: ValueTree>(
    tree: &mut T,
    budget: u32,
    mut fails: impl FnMut(&T::Value) -> bool,
) -> (T::Value, u32) {
    let mut best = tree.current();
    let mut last_failed = true;
    let mut steps = 0u32;
    while steps < budget {
        let more = if last_failed {
            tree.simplify()
        } else {
            tree.complicate()
        };
        if !more {
            break;
        }
        steps += 1;
        let candidate = tree.current();
        last_failed = fails(&candidate);
        if last_failed {
            best = candidate;
        }
    }
    (best, steps)
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once) a panic hook that stays silent while this thread is
/// inside a caught proptest case — shrinking re-runs failing bodies many
/// times and the default hook would print a backtrace banner for each.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `config.cases` random cases of `test` over `strategy`, shrinking
/// and reporting the first failure. This is the engine behind the
/// [`proptest!`] macro; it is public for harness-level tests.
///
/// # Panics
///
/// Panics (after minimisation) if any case fails.
pub fn run_proptest<S, F>(config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug + Clone,
    F: Fn(S::Value),
{
    install_quiet_hook();
    // Fixed seed: deterministic in CI, varied per case by RNG state.
    let mut rng = StdRng::seed_from_u64(0x05ee_d0fc_a5e5);
    for case in 0..config.cases {
        let mut tree = strategy.new_tree(&mut rng);
        let run = |value: S::Value| -> Result<(), String> {
            QUIET_PANICS.with(|q| q.set(true));
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            QUIET_PANICS.with(|q| q.set(false));
            outcome.map_err(|payload| panic_message(payload.as_ref()))
        };
        if let Err(original) = run(tree.current()) {
            let mut minimal_msg = original.clone();
            let (minimal, steps) = shrink_failure(&mut tree, config.max_shrink_iters, |value| {
                match run(value.clone()) {
                    Err(msg) => {
                        minimal_msg = msg;
                        true
                    }
                    Ok(()) => false,
                }
            });
            panic!(
                "proptest case {case} failed; minimal failing input \
                 (after {steps} shrink steps):\n{minimal:#?}\n\
                 minimal failure: {minimal_msg}\noriginal failure: {original}"
            );
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, ValueTree};
}

/// `assert!` under proptest's name; failures abort the case and trigger
/// shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-definition macro: each `fn name(binder in strategy, ...) { .. }`
/// becomes a `#[test]` that runs `config.cases` random cases and shrinks
/// any failure to a minimal counterexample before reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binder:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, ($($strat,)+), move |($($binder,)+)| $body);
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            n in 2usize..10,
            xs in crate::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            nk in (1usize..8).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k))),
        ) {
            let (n, k) = nk;
            prop_assert!(k < n, "flat-mapped k must depend on n");
        }
    }

    fn shrink_with<S: Strategy>(
        strategy: S,
        fails: impl FnMut(&S::Value) -> bool + Copy,
        seed: u64,
    ) -> Option<(S::Value, u32)> {
        let mut fails = fails;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            let mut tree = strategy.new_tree(&mut rng);
            if fails(&tree.current()) {
                return Some(shrink_failure(&mut tree, 4096, fails));
            }
        }
        None
    }

    #[test]
    fn integer_failures_shrink_to_the_boundary() {
        let (minimal, _) = shrink_with(0u64..100_000, |&v| v >= 777, 1).expect("failure found");
        assert_eq!(minimal, 777, "binary search must land on the threshold");
    }

    #[test]
    fn integer_shrink_respects_range_start() {
        // Everything fails: the minimum of the range itself is failing.
        let (minimal, _) = shrink_with(5u32..1000, |_| true, 2).expect("failure found");
        assert_eq!(minimal, 5);
    }

    #[test]
    fn vec_failures_shrink_length_and_elements() {
        let strategy = collection::vec(0u32..100, 0..30);
        let (minimal, _) =
            shrink_with(strategy, |xs| xs.iter().sum::<u32>() >= 5, 3).expect("failure found");
        // Length bisected to the fewest elements able to carry the sum,
        // then each element bisected to its pointwise minimum: total == 5.
        assert_eq!(minimal.iter().sum::<u32>(), 5, "minimal was {minimal:?}");
        assert!(!minimal.contains(&0), "dead weight left in {minimal:?}");
    }

    #[test]
    fn flat_map_shrinks_the_source_first() {
        let strategy =
            (0usize..10_000).prop_flat_map(|n| (0usize..n + 1).prop_map(move |k| (n, k)));
        let (minimal, _) = shrink_with(strategy, |&(n, _)| n >= 17, 4).expect("failure found");
        assert_eq!(minimal.0, 17, "source must bisect to its threshold");
    }

    #[test]
    fn wide_signed_ranges_shrink_without_overflow() {
        // `hi - lo` overflows i64 for ranges wider than half the domain;
        // the midpoint must be computed without that intermediate.
        let (minimal, _) = shrink_with(i64::MIN..i64::MAX, |&v| v >= 1234, 7)
            .expect("a failing (positive) value should generate within 256 draws");
        assert_eq!(minimal, 1234);
    }

    #[test]
    fn flat_map_shrinks_the_dependent_value_too() {
        // After the source settles on its minimal failing value via the
        // complicate path, shrinking must proceed *inside* the dependent
        // value rather than aborting with it unminimised.
        let strategy =
            (0usize..10_000).prop_flat_map(|n| (0usize..n + 1).prop_map(move |k| (n, k)));
        let (minimal, _) =
            shrink_with(strategy, |&(n, k)| n >= 17 && k >= 3, 8).expect("failure found");
        assert!(minimal.0 >= 17, "source not shrunk: {minimal:?}");
        assert_eq!(minimal.1, 3, "dependent value not shrunk: {minimal:?}");
    }

    #[test]
    fn float_trees_rest_on_a_failing_value_when_the_budget_runs_out() {
        // Only the originally generated value fails, so every candidate
        // passes and the step budget exhausts on the complicate path; the
        // tree must still rest on the known-failing value afterwards.
        let mut rng = StdRng::seed_from_u64(9);
        let mut tree = (100.0f64..1000.0).new_tree(&mut rng);
        let threshold = tree.current();
        let fails = move |v: &f64| *v >= threshold;
        let (best, _) = shrink_failure(&mut tree, 4096, fails);
        assert!(fails(&best));
        assert!(
            fails(&tree.current()),
            "tree rested on a passing value: {} < {threshold}",
            tree.current()
        );
    }

    #[test]
    fn tuples_shrink_every_component() {
        let (minimal, _) = shrink_with((0u32..1000, 0u32..1000), |&(a, b)| a >= 3 && b >= 40, 5)
            .expect("failure found");
        assert_eq!(minimal, (3, 40));
    }

    #[test]
    fn shrink_budget_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let strategy = 0u64..u64::MAX;
        loop {
            let mut tree = strategy.new_tree(&mut rng);
            if tree.current() > 1_000_000 {
                let (_, steps) = shrink_failure(&mut tree, 7, |&v| v > 1_000_000);
                assert!(steps <= 7);
                break;
            }
        }
    }

    #[test]
    fn passing_properties_never_shrink() {
        run_proptest(
            &ProptestConfig::with_cases(64),
            (0u8..10, collection::vec(0u8..10, 0..8)),
            |(n, xs)| {
                assert!(n < 10);
                assert!(xs.len() < 8);
            },
        );
    }
}
